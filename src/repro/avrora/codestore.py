"""Disk-backed persistent store for lowered :class:`FunctionPlan` artifacts.

The in-process :class:`~repro.avrora.engine.CodeCache` makes lowering
one-per-function within a process; this module makes it one-per-*content*
across processes.  A :class:`PlanStore` maps a cache key — derived from the
program's content key, the target platform, and the engine's lowering
version — to a pickled *portable* plan export
(:meth:`CodeCache.export_portable`), so a warm ``simulate`` hydrates every
plan from disk and performs zero front-end lowerings, including the sharded
kernel's pre-fork warm (the coordinator hits disk once; forked workers
inherit the hydrated cache for free).

Robustness over cleverness: entries are self-describing pickles carrying a
format version, the engine lowering version, and a payload digest.  Any
mismatch — truncation, corruption, a stale engine — is logged with a
labelled warning and treated as a miss (fresh lowering), never a crash.
Writers stage to a temp file in the same directory and publish with
``os.replace`` so concurrent processes only ever observe complete entries.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from typing import Optional

from repro.avrora.engine import LOWERING_VERSION

logger = logging.getLogger(__name__)

#: Version of the on-disk envelope itself (bump on layout changes).
FORMAT_VERSION = 1

#: Label prefixed to every warning so operators can grep for cache trouble.
_WARN = "plan-cache"


def plan_key(program_key: str, platform: str) -> str:
    """Content-addressed key for one (program, platform, engine) triple.

    ``program_key`` is the api layer's sha256 content key (any stable
    program identity string works); the platform name pins the cost model
    and :data:`LOWERING_VERSION` pins the plan format, so upgrading the
    engine naturally misses old entries instead of mis-reading them.
    """
    blob = f"{FORMAT_VERSION}|{LOWERING_VERSION}|{program_key}|{platform}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class PlanStore:
    """Content-addressed directory of pickled portable plan exports.

    One file per key, named ``<key>.plan``; the pickle is an envelope
    ``{"format", "engine", "key", "digest", "payload"}`` where ``digest``
    is the sha256 of the payload's own pickle bytes.  ``load`` returns the
    payload dict or None; ``store`` is atomic (write-temp + rename).
    Counters (``hits``/``misses``/``stores``/``errors``) feed the
    simulation record's cache telemetry.
    """

    __slots__ = ("root", "hits", "misses", "stores", "errors")

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.plan")

    def load(self, key: str) -> Optional[dict]:
        """Return the portable payload for ``key``, or None on any miss.

        Corrupt, truncated, or version-stale entries are demoted to misses
        with a labelled warning; the caller falls back to fresh lowering.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            self.errors += 1
            logger.warning("%s: unreadable entry %s (%s); lowering fresh",
                           _WARN, path, exc)
            return None
        try:
            envelope = pickle.loads(raw)
        except Exception as exc:  # truncated / corrupt pickle stream
            self.errors += 1
            logger.warning("%s: corrupt entry %s (%s); lowering fresh",
                           _WARN, path, exc)
            return None
        if not isinstance(envelope, dict) or \
                envelope.get("format") != FORMAT_VERSION or \
                envelope.get("engine") != LOWERING_VERSION:
            self.errors += 1
            logger.warning(
                "%s: version-stale entry %s (format=%r engine=%r, "
                "want %d/%d); lowering fresh", _WARN, path,
                envelope.get("format") if isinstance(envelope, dict)
                else None,
                envelope.get("engine") if isinstance(envelope, dict)
                else None,
                FORMAT_VERSION, LOWERING_VERSION)
            return None
        blob = envelope.get("payload")
        digest = hashlib.sha256(blob).hexdigest() \
            if isinstance(blob, bytes) else None
        if digest != envelope.get("digest"):
            self.errors += 1
            logger.warning("%s: digest mismatch in %s; lowering fresh",
                           _WARN, path)
            return None
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # pragma: no cover - digest guards this
            self.errors += 1
            logger.warning("%s: undecodable payload in %s (%s); "
                           "lowering fresh", _WARN, path, exc)
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> bool:
        """Persist ``payload`` under ``key`` atomically; True on success.

        The envelope is staged to a temp file in the store directory and
        published with ``os.replace``, so a concurrent reader sees either
        the old complete entry or the new complete entry — never a torn
        write.  Last writer wins, which is fine: all writers for one key
        produce equivalent plans by construction.
        """
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "format": FORMAT_VERSION,
            "engine": LOWERING_VERSION,
            "key": key,
            "digest": hashlib.sha256(blob).hexdigest(),
            "payload": blob,
        }
        path = self._path(key)
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(envelope, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self.errors += 1
            logger.warning("%s: cannot persist %s (%s); continuing without",
                           _WARN, path, exc)
            return False
        self.stores += 1
        return True

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }
