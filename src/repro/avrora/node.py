"""One simulated sensor node.

A node owns a program image (the final, optimized CMinor program), the
memory objects for its globals, its peripherals, an event queue, and the
cycle accounting that the duty-cycle experiment reads out at the end:

* ``busy_cycles`` — cycles spent executing code (including interrupt
  handlers and safety checks),
* ``sleep_cycles`` — cycles spent in the sleep state waiting for the next
  event.

The duty cycle is ``busy / (busy + sleep)`` — exactly the quantity Figure
3(c) reports.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.backend.target import CostModel, cost_model_for
from repro.avrora.devices import Adc, Clock, DeviceBus, Leds, Radio, Uart, \
    standard_devices
from repro.avrora.interp import Interpreter
from repro.avrora.memory import MemoryError_, MemorySystem, Pointer, RuntimeValue, \
    is_null
from repro.tinyos.hardware import JIFFIES_PER_SECOND


#: Sequence band for cross-node packet deliveries: far above anything the
#: node's own ``_event_seq`` counter can reach, so delivery order within a
#: cycle is decided by the packet, not by queue-insertion history.
_DELIVERY_SEQ_BASE = 1 << 60
#: Node ids are TinyOS 16-bit addresses; one sender transmits at most one
#: packet per (link, cycle), so (sent_cycles, sender_id) is unique.
_DELIVERY_SENDER_SPAN = 1 << 16


class NodeHalted(Exception):
    """The program executed ``__halt`` (normally via ``__ccured_fail``)."""

    def __init__(self, code: int, message: str = ""):
        self.code = code
        self.message = message
        super().__init__(f"node halted with code {code}: {message}")


class SafetyFault(Exception):
    """An unchecked memory error occurred (only possible in unsafe builds)."""


class _SimulationFinished(Exception):
    """Internal: the simulation time limit was reached."""


@dataclass
class FailureRecord:
    """A run-time safety-check failure reported by the program."""

    message: str
    flid: Optional[int]
    time_cycles: int


class Node:
    """One mote running one program image."""

    def __init__(self, program: Program, node_id: int = 1,
                 costs: Optional[CostModel] = None,
                 engine: Optional[str] = None):
        self.program = program
        self.node_id = node_id
        self.costs = costs or cost_model_for(program.platform)
        self.clock_hz = self.costs.platform.clock_hz
        self.cycles_per_jiffy = max(1, self.clock_hz // JIFFIES_PER_SECOND)

        self.memory = MemorySystem(self.costs.platform.pointer_bytes)
        self.bus = DeviceBus()
        for device in standard_devices():
            self.bus.attach(self, device)

        #: ``"compiled"`` (default) or ``"tree"``; see repro.avrora.interp.
        self.interpreter = Interpreter(self, engine=engine)

        self.time_cycles = 0
        self.sleep_cycles = 0
        self.end_cycles = 0
        self.atomic_depth = 0
        self.interrupts_enabled = False
        self.in_interrupt = False
        #: FIFO of raised-but-undelivered interrupt vectors.  A deque: the
        #: delivery loop pops from the left, and ``list.pop(0)`` is O(n).
        #: The engines close over the container and test its truthiness on
        #: the hot path, so it is mutated in place and never reassigned.
        self.pending_interrupts: deque[str] = deque()
        self.interrupts_delivered = 0
        self.failures: list[FailureRecord] = []
        self.halted = False
        self.halt_code: Optional[int] = None
        #: Out-of-bounds accesses absorbed by the lenient memory model (an
        #: unsafe build silently corrupting memory shows up here).
        self.memory_violations = 0
        #: When True, unchecked out-of-bounds accesses raise SafetyFault
        #: instead of being absorbed.
        self.strict_memory = False

        self._event_queue: list[tuple[int, int, Callable[[], None]]] = []
        #: Next event sequence number (heap tie-break).  A plain int — not
        #: an ``itertools.count`` — so :meth:`snapshot` can serialize it.
        self._event_seq = 0

        #: Per-node traffic generator installed by the network (if any).
        self.traffic_generator = None
        #: Extensible event resolver installed by a fault-injection layer
        #: (``repro.scenarios``): maps ``("scenario", ...)`` descriptors
        #: back to callbacks after a restore.  ``None`` when no scenario
        #: is armed — the hot path never touches it.
        self.scenario_resolver: Optional[
            Callable[[tuple], Optional[Callable[[], None]]]] = None

        # -- resumable execution (run_until) ---------------------------------
        #: Local time at which the node must pause (0 = run to end_cycles).
        self.pause_cycles = 0
        #: True while the node is blocked inside the sleep loop (it cannot
        #: initiate anything before its next event or an external input).
        self._paused_in_sleep = False
        self._exec_thread: Optional[threading.Thread] = None
        self._resume_evt = threading.Event()
        self._paused_evt = threading.Event()
        #: "idle" | "running" | "paused" | "finished" | "returned" | "error"
        self._status = "idle"
        self._run_error: Optional[BaseException] = None
        self._abort = False
        #: Restore alignment flag: park the execution thread at the first
        #: sleep point it reaches (see ``restore(resume=True)``).
        self._hold_in_sleep = False

    # -- devices ------------------------------------------------------------------

    @property
    def leds(self) -> Leds:
        return self.bus.find(Leds)  # type: ignore[return-value]

    @property
    def radio(self) -> Radio:
        return self.bus.find(Radio)  # type: ignore[return-value]

    @property
    def uart(self) -> Uart:
        return self.bus.find(Uart)  # type: ignore[return-value]

    @property
    def adc(self) -> Adc:
        return self.bus.find(Adc)  # type: ignore[return-value]

    @property
    def clock(self) -> Clock:
        return self.bus.find(Clock)  # type: ignore[return-value]

    # -- time ---------------------------------------------------------------------

    def cycles_for_us(self, microseconds: int) -> int:
        return max(1, (self.clock_hz * microseconds) // 1_000_000)

    def current_jiffies(self) -> int:
        return self.time_cycles // self.cycles_per_jiffy

    @property
    def busy_cycles(self) -> int:
        """Cycles spent executing code.

        Derived from the invariant ``time = busy + sleep``: execution only
        advances time through :meth:`consume` (busy) or the sleep paths
        (sleep), so storing busy separately would just add a counter update
        to the hottest loop in the simulator.
        """
        return self.time_cycles - self.sleep_cycles

    def duty_cycle(self) -> float:
        total = self.time_cycles
        if total == 0:
            return 0.0
        return self.busy_cycles / total

    # -- event queue ------------------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._event_seq
        self._event_seq = seq + 1
        return seq

    def schedule(self, delay_cycles: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay_cycles`` from now."""
        when = self.time_cycles + max(1, delay_cycles)
        heapq.heappush(self._event_queue, (when, self._next_seq(), callback))

    def schedule_at(self, when_cycles: int,
                    callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute local time.

        Used by the network to deliver cross-node packets: the lockstep
        scheduler guarantees ``when_cycles`` is never in this node's past,
        but a delivery landing exactly on the current cycle is legal and
        fires at the next poll.
        """
        heapq.heappush(self._event_queue,
                       (when_cycles, self._next_seq(), callback))

    def schedule_delivery(self, when_cycles: int, sent_cycles: int,
                          sender_id: int,
                          callback: Callable[[], None]) -> None:
        """Schedule a cross-node packet delivery at an absolute local time.

        Deliveries get their own sequence band, *above* every locally
        allocated sequence number: ties at the same arrival cycle resolve
        local events first, then deliveries in ``(sent_cycles, sender_id)``
        order.  The tie-break is a pure function of the packet — not of
        when this queue learned about it — which is what keeps event order
        identical however the network is partitioned across worker
        processes (a shard inserts remote packets at window boundaries,
        the in-process kernel at transmit time).
        """
        heapq.heappush(
            self._event_queue,
            (when_cycles,
             _DELIVERY_SEQ_BASE + sent_cycles * _DELIVERY_SENDER_SPAN
             + sender_id,
             callback))

    def _run_due_events(self) -> None:
        while self._event_queue and self._event_queue[0][0] <= self.time_cycles:
            _when, _seq, callback = heapq.heappop(self._event_queue)
            callback()

    def next_event_cycles(self) -> Optional[int]:
        """Local time of the next queued event, or ``None`` when idle.

        The cheap probe behind the compiled engine's superblock poll-window
        guard: anything that must interrupt straight-line execution — due
        events, lockstep horizon sentinels (``run_until`` and
        ``shrink_pause`` always queue one at the pause horizon), packet
        deliveries — appears on the event queue, so "no event before
        ``time + block_cycles``" proves a fused block cannot skip an
        observable poll.  Trace superblocks guard with their *worst-case*
        window (inlined callee branches take the more expensive side), so
        the proof covers every dynamic path.  The engine inlines this
        expression into its guard ops; keep the two in sync.
        """
        queue = self._event_queue
        return queue[0][0] if queue else None

    def interrupt_pending(self) -> bool:
        """Whether any raised interrupt awaits delivery (the guard's twin)."""
        return bool(self.pending_interrupts)

    # -- cycle accounting ----------------------------------------------------------------

    def consume(self, cycles: int) -> None:
        """Charge busy cycles for executing code."""
        self.time_cycles += cycles
        if self.end_cycles and self.time_cycles >= self.end_cycles:
            raise _SimulationFinished()

    def sleep_until_next_event(self) -> None:
        """Advance time to the next event, accounting the gap as sleep.

        When a pause horizon is set (lockstep co-simulation), the sleep is
        segmented: the node dozes up to the horizon, parks at the pause
        gate, and — once the scheduler grants a new horizon — *continues
        sleeping* without returning to the program, so intermediate
        horizons never change what the program executes or is charged.
        With no horizon set (``pause_cycles == 0``) this is exactly the
        legacy single-run behaviour.
        """
        if self._hold_in_sleep:
            # Restore alignment (see ``restore(resume=True)``): park here,
            # at the program's own sleep point, so the caller can overwrite
            # the node's data state while the execution stack is live.
            self._paused_in_sleep = True
            try:
                while self._hold_in_sleep and not self._abort:
                    self._status = "paused"
                    self._paused_evt.set()
                    self._resume_evt.wait()
                    self._resume_evt.clear()
            finally:
                self._paused_in_sleep = False
            if self._abort:
                raise _SimulationFinished()
        while True:
            # Single batch-processing site: every due event — scheduled
            # locally or inserted by a peer (or, under the sharded kernel,
            # by the coordinator at a window boundary) while the node was
            # parked at the gate — is opened here in heap (band) order, and
            # the program wakes only once an interrupt is actually
            # delivered.  Waking on "some event ran" would make the wake
            # count depend on how pause horizons interleaved with event
            # times, which differs between kernels and partitionings.
            self._run_due_events()
            if self.pending_interrupts and self._can_deliver():
                self._deliver_interrupts()
                return
            if not self._event_queue:
                if self.pause_cycles:
                    # Nothing local will wake the node, but a peer still
                    # can: doze up to the horizon and wait for a grant.
                    if self.pause_cycles > self.time_cycles:
                        self.sleep_cycles += \
                            self.pause_cycles - self.time_cycles
                        self.time_cycles = self.pause_cycles
                    self._sleep_gate()
                    continue
                # Nothing will ever wake the node again: sleep to the end.
                target = self.end_cycles or self.time_cycles + self.clock_hz
                self.sleep_cycles += max(0, target - self.time_cycles)
                self.time_cycles = target
                raise _SimulationFinished()
            next_time = self._event_queue[0][0]
            if self.pause_cycles and self.pause_cycles <= next_time:
                # Park *before* opening the batch at the horizon cycle.  A
                # peer may still hand over a delivery landing exactly on
                # that cycle; it must join the batch before the batch is
                # processed, or same-cycle collision winners would depend
                # on the partitioning rather than on the band order.
                if self.pause_cycles > self.time_cycles:
                    self.sleep_cycles += self.pause_cycles - self.time_cycles
                    self.time_cycles = self.pause_cycles
                if self.end_cycles and self.time_cycles >= self.end_cycles:
                    raise _SimulationFinished()
                self._sleep_gate()
                continue
            if next_time > self.time_cycles:
                self.sleep_cycles += next_time - self.time_cycles
                self.time_cycles = next_time
            if self.end_cycles and self.time_cycles >= self.end_cycles:
                raise _SimulationFinished()

    def _sleep_gate(self) -> None:
        """Park at the pause gate while flagged as idle (asleep)."""
        self._paused_in_sleep = True
        try:
            self._pause_gate()
        finally:
            self._paused_in_sleep = False

    # -- interrupts ----------------------------------------------------------------------

    def raise_interrupt(self, vector: str) -> None:
        if vector not in self.program.interrupt_vectors:
            return
        if vector not in self.pending_interrupts:
            self.pending_interrupts.append(vector)

    def _can_deliver(self) -> bool:
        return (self.interrupts_enabled and not self.in_interrupt
                and self.atomic_depth == 0)

    def _deliver_interrupts(self) -> None:
        while self.pending_interrupts and self._can_deliver():
            vector = self.pending_interrupts.popleft()
            handler = self.program.interrupt_vectors.get(vector)
            if handler is None:
                continue
            self.in_interrupt = True
            self.interrupts_delivered += 1
            self.consume(self.costs.interrupt_overhead_cycles())
            try:
                self.interpreter.call(handler, [])
            finally:
                self.in_interrupt = False

    def poll(self) -> None:
        """Between-statement housekeeping: fire due events, deliver interrupts.

        Poll points are also the engine-agnostic pause points: when a
        horizon is set, a sentinel event at the horizon makes the engines'
        events-due fast path call :meth:`poll` even in a compute loop, and
        the gate below parks the execution thread until the lockstep
        scheduler grants a new horizon.
        """
        if self.pause_cycles and self.time_cycles >= self.pause_cycles:
            # Park *before* opening the due-event batch (the sleep loop
            # does the same).  Execution overshoots the horizon by part of
            # one statement, and a peer may still insert a delivery due at
            # or below the overshot clock; gating first lets every such
            # arrival join the batch, which then runs below in band order
            # — the identical batch no matter which kernel ran the node.
            self._pause_gate()
        if self._event_queue and self._event_queue[0][0] <= self.time_cycles:
            self._run_due_events()
        if self.pending_interrupts and self._can_deliver():
            self._deliver_interrupts()

    # -- builtins -------------------------------------------------------------------------

    def call_builtin(self, name: str, args: list[RuntimeValue]) -> RuntimeValue:
        builtin = self.program.lookup_builtin(name)
        if builtin is not None:
            self.consume(builtin.cycles)
        if name == "__hw_read8":
            return self.bus.read(int(args[0]), 1) & 0xFF
        if name == "__hw_read16":
            return self.bus.read(int(args[0]), 2) & 0xFFFF
        if name == "__hw_write8":
            self.bus.write(int(args[0]), 1, int(args[1]) & 0xFF)
            return 0
        if name == "__hw_write16":
            self.bus.write(int(args[0]), 2, int(args[1]) & 0xFFFF)
            return 0
        if name == "__sleep":
            self.sleep_until_next_event()
            return 0
        if name == "__enable_interrupts":
            self.interrupts_enabled = True
            return 0
        if name == "__disable_interrupts":
            self.interrupts_enabled = False
            return 0
        if name == "__irq_save":
            state = 1 if self.interrupts_enabled else 0
            self.interrupts_enabled = False
            return state
        if name == "__irq_restore":
            self.interrupts_enabled = bool(int(args[0]))
            return 0
        if name == "__halt":
            code = int(args[0]) if args else 0
            raise NodeHalted(code, self.failures[-1].message if self.failures else "")
        if name == "__bounds_ok":
            pointer = args[0]
            size = int(args[1])
            if is_null(pointer) or not isinstance(pointer, Pointer):
                return 0
            return 1 if pointer.in_bounds(size) else 0
        if name == "__align_ok":
            return 1
        if name == "__error_report":
            message = ""
            if isinstance(args[0], Pointer):
                message = self.memory.read_c_string(args[0])
            self.failures.append(FailureRecord(message, None, self.time_cycles))
            return 0
        if name == "__error_report_id":
            flid = int(args[0])
            self.failures.append(FailureRecord(f"flid {flid}", flid, self.time_cycles))
            return 0
        raise KeyError(f"unknown builtin {name!r}")

    # -- running --------------------------------------------------------------------------

    def boot(self) -> None:
        """Allocate and initialize global memory (done once before running)."""
        pointer_size = self.costs.platform.pointer_bytes
        for var in self.program.iter_globals():
            self.memory.initialize_global(var, pointer_size)
        # Second pass: pointer initializers that reference other globals.
        for var in self.program.iter_globals():
            if var.init is not None and var.ctype.is_pointer():
                self.memory.initialize_global(var, pointer_size)
        local_address = self.memory.global_object("TOS_LOCAL_ADDRESS")
        if local_address is not None:
            self.memory.write(Pointer(local_address, 0), ty.UINT16, self.node_id)

    # -- snapshot / restore ---------------------------------------------------

    def _describe_event(self, callback: Callable[[], None]) -> tuple:
        """A picklable tag for one queued event callback."""
        desc = getattr(callback, "__event_desc__", None)
        if desc is not None:
            return desc
        desc = self.bus.describe_event(callback)
        if desc is not None:
            return desc
        raise ValueError(
            f"node {self.node_id}: cannot snapshot event callback "
            f"{callback!r} — no event descriptor")

    def _resolve_event(self, desc: tuple,
                       resolve_event: Optional[Callable[[tuple], Optional[
                           Callable[[], None]]]]) -> Callable[[], None]:
        """The callable an event descriptor stands for, after a restore."""
        callback = self.bus.resolve_event(desc)
        if callback is None and self.traffic_generator is not None:
            callback = self.traffic_generator.resolve_event(desc, self)
        if callback is None and self.scenario_resolver is not None:
            callback = self.scenario_resolver(desc)
        if callback is None and resolve_event is not None:
            callback = resolve_event(desc)
        if callback is None:
            raise ValueError(
                f"node {self.node_id}: cannot restore event descriptor "
                f"{desc!r}")
        return callback

    def snapshot_phase(self) -> Optional[str]:
        """The phase a :meth:`snapshot` taken now would record, or None.

        None means the node is paused mid-computation (live Python frames)
        and cannot be serialized until a later grant parks it in its sleep
        loop — the probe the sharded kernel's opportunistic checkpointing
        uses to decide whether a window round is checkpointable.
        """
        if self._status in ("finished", "returned"):
            return self._status
        if self._status == "paused" and self._paused_in_sleep:
            return "sleeping"
        if self._status == "idle" and self._exec_thread is None:
            return "idle"
        return None

    def snapshot(self) -> dict:
        """Serialize the node's complete simulation state as plain data.

        Legal when the node is idle (booted but never run), parked inside
        its sleep loop (``run_until`` returned ``"paused"`` with the node
        asleep), or finished.  A node paused mid-computation holds live
        Python frames that cannot be serialized, and raises.

        The snapshot is picklable: memory as named byte images with a
        pointer-provenance table, devices as per-class dicts, queued events
        as ``(when, seq, descriptor)`` tags (horizon sentinels, which are
        pause-pattern artifacts, are dropped), plus every counter the
        simulation reports.  Restoring it — in this process or another —
        reproduces bit-identical behaviour; see :meth:`restore`.
        """
        phase = self.snapshot_phase()
        if phase is None:
            raise ValueError(
                f"node {self.node_id}: snapshot requires an idle, "
                f"sleeping, or finished node (status {self._status!r}"
                f"{', mid-computation' if not self._paused_in_sleep else ''})")
        events = []
        for when, seq, callback in sorted(
                self._event_queue, key=lambda entry: entry[:2]):
            desc = self._describe_event(callback)
            if desc[0] == "noop":
                continue
            events.append((when, seq, desc))
        generator = self.traffic_generator
        return {
            "phase": phase,
            "node_id": self.node_id,
            "time_cycles": self.time_cycles,
            "sleep_cycles": self.sleep_cycles,
            "end_cycles": self.end_cycles,
            "interrupts_enabled": self.interrupts_enabled,
            "pending_interrupts": list(self.pending_interrupts),
            "interrupts_delivered": self.interrupts_delivered,
            "halted": self.halted,
            "halt_code": self.halt_code,
            "memory_violations": self.memory_violations,
            "failures": [(f.message, f.flid, f.time_cycles)
                         for f in self.failures],
            "events": events,
            "event_seq": self._event_seq,
            "memory": self.memory.snapshot(),
            "devices": self.bus.snapshot(),
            "interp": self.interpreter.snapshot_state(),
            "traffic": {"injected_radio": generator.injected_radio,
                        "injected_uart": generator.injected_uart}
                       if generator is not None else None,
        }

    def restore(self, snapshot: dict, *,
                resolve_event: Optional[Callable[[tuple], Optional[
                    Callable[[], None]]]] = None,
                resume: bool = False) -> None:
        """Overwrite this node's state with a :meth:`snapshot`.

        All engine-visible containers (memory objects, the event queue,
        the pending-interrupt deque, the statement counters) are mutated
        in place — the compiled engine bakes references to them into its
        closures, so identity must survive.  ``resolve_event`` handles
        event descriptors no device understands (the network's cross-node
        delivery events).

        ``resume=False`` (default) restores data only: legal for ``idle``
        snapshots (a freshly booted worker node about to start running)
        and ``finished``/``returned`` ones (merging a completed shard's
        results back into the coordinator's nodes).

        ``resume=True`` continues a ``sleeping`` mid-run snapshot: the
        node first runs its program to the *first* sleep point and parks
        there, then the restored state overwrites everything.  This is
        sound for images from the TinyOS build chain because the generated
        ``main`` loop reaches every sleep with an identical machine stack
        (no live locals); the subsequent grants resume the original
        timeline bit-identically.
        """
        phase = snapshot["phase"]
        if resume:
            if phase != "sleeping":
                raise ValueError(
                    f"node {self.node_id}: resume=True needs a 'sleeping' "
                    f"snapshot, got {phase!r}")
            self._align_to_sleep()
        elif phase == "sleeping":
            raise ValueError(
                f"node {self.node_id}: a mid-run snapshot can only be "
                f"restored with resume=True")
        elif not self.memory.objects:
            self.boot()
        self.memory.restore(snapshot["memory"])
        self.bus.restore(snapshot["devices"])
        self.time_cycles = snapshot["time_cycles"]
        self.sleep_cycles = snapshot["sleep_cycles"]
        self.end_cycles = snapshot["end_cycles"]
        self.interrupts_enabled = snapshot["interrupts_enabled"]
        self.pending_interrupts.clear()
        self.pending_interrupts.extend(snapshot["pending_interrupts"])
        self.interrupts_delivered = snapshot["interrupts_delivered"]
        self.halted = snapshot["halted"]
        self.halt_code = snapshot["halt_code"]
        self.memory_violations = snapshot["memory_violations"]
        self.failures[:] = [FailureRecord(message, flid, time)
                            for message, flid, time in snapshot["failures"]]
        self._event_queue[:] = [
            (when, seq, self._resolve_event(desc, resolve_event))
            for when, seq, desc in snapshot["events"]]
        heapq.heapify(self._event_queue)
        self._event_seq = snapshot["event_seq"]
        self.interpreter.restore_state(snapshot["interp"])
        traffic = snapshot.get("traffic")
        if traffic is not None and self.traffic_generator is not None:
            self.traffic_generator.injected_radio = traffic["injected_radio"]
            self.traffic_generator.injected_uart = traffic["injected_uart"]
        if resume:
            # Parked at the hold gate; the next run_until grant continues
            # the restored timeline.  pause_cycles re-arms on that grant.
            self.pause_cycles = 0
            self._hold_in_sleep = False
        else:
            self._status = "idle" if phase == "idle" else phase

    def _align_to_sleep(self) -> None:
        """Run a fresh node to its first sleep point and park it there."""
        if self._exec_thread is not None and self._exec_thread.is_alive():
            raise ValueError(
                f"node {self.node_id}: restore(resume=True) needs a node "
                f"that has not started running")
        if not self.memory.objects:
            self.boot()
        self._hold_in_sleep = True
        self.pause_cycles = 0
        # Generous bound: boot code runs for milliseconds before sleeping.
        self.end_cycles = self.time_cycles + 10 * self.clock_hz
        self._paused_evt.clear()
        self._status = "running"
        self._exec_thread = threading.Thread(
            target=self._exec_main, daemon=True,
            name=f"avrora-node-{self.node_id}")
        self._exec_thread.start()
        self._paused_evt.wait()
        if self._run_error is not None:
            error, self._run_error = self._run_error, None
            self._status = "error"
            raise error
        if self._status != "paused" or not self._paused_in_sleep:
            raise ValueError(
                f"node {self.node_id}: the program never reached its sleep "
                f"loop; a mid-run snapshot cannot be resumed "
                f"(status {self._status!r})")

    def run(self, seconds: float = 1.0) -> None:
        """Run the node to completion on the calling thread (legacy entry)."""
        self.pause_cycles = 0
        self.end_cycles = self.time_cycles + int(seconds * self.clock_hz)
        if not self.memory.objects:
            self.boot()
        try:
            self.interpreter.call(self.program.entry, [])
        except _SimulationFinished:
            return
        except NodeHalted as halt:
            self.halted = True
            self.halt_code = halt.code
            # A halted node idles (asleep) for the rest of the simulation.
            if self.end_cycles > self.time_cycles:
                self.sleep_cycles += self.end_cycles - self.time_cycles
                self.time_cycles = self.end_cycles
            return
        except MemoryError_ as fault:
            raise SafetyFault(str(fault)) from fault

    # -- resumable execution (lockstep co-simulation) -----------------------------

    def begin_run(self, seconds: float) -> None:
        """Arm the node for a resumable run of ``seconds`` simulated time."""
        self.end_cycles = self.time_cycles + int(seconds * self.clock_hz)
        if not self.memory.objects:
            self.boot()
        if self._exec_thread is None or not self._exec_thread.is_alive():
            # A fresh run (or a re-run after a completed one: the legacy
            # semantics re-enter the program's entry point).
            self._exec_thread = None
            self._status = "idle"
        self.pause_cycles = 0

    def run_until(self, horizon_cycles: int) -> str:
        """Advance the node until its local clock reaches ``horizon_cycles``.

        The program runs on a dedicated execution thread in strict
        ping-pong with the caller: exactly one of the two is ever runnable,
        so node state needs no locking.  The thread parks at poll points
        (and inside segmented sleeps) once the horizon is reached, keeping
        its full execution state — machine frames, interrupt context,
        half-run handlers — alive for the next grant.

        Returns the node's status: ``"paused"`` (horizon reached),
        ``"finished"`` (simulated time exhausted, or the node halted),
        or ``"returned"`` (the program's entry returned).  Errors raised
        by the program (e.g. :class:`SafetyFault` under strict memory)
        re-raise here, on the caller.
        """
        if self._status in ("finished", "returned", "error"):
            return self._status
        horizon = max(int(horizon_cycles), self.time_cycles + 1)
        if horizon >= self.end_cycles:
            self.pause_cycles = 0
        else:
            self.pause_cycles = horizon
            heapq.heappush(self._event_queue,
                           (horizon, self._next_seq(), _noop))
        self._paused_evt.clear()
        self._status = "running"
        if self._exec_thread is None:
            self._exec_thread = threading.Thread(
                target=self._exec_main, daemon=True,
                name=f"avrora-node-{self.node_id}")
            self._exec_thread.start()
        else:
            self._resume_evt.set()
        self._paused_evt.wait()
        if self._run_error is not None:
            error, self._run_error = self._run_error, None
            self._status = "error"
            raise error
        return self._status

    def abort_run(self) -> None:
        """Tear down a paused execution thread (e.g. after a peer failed)."""
        thread = self._exec_thread
        if thread is None or not thread.is_alive():
            return
        self._abort = True
        try:
            self._paused_evt.clear()
            self._resume_evt.set()
            self._paused_evt.wait(timeout=10.0)
        finally:
            self._abort = False
        self._run_error = None

    def next_action_cycles(self) -> Optional[int]:
        """Earliest local time at which this node could *initiate* anything.

        The lockstep scheduler uses this for lookahead: a node parked in
        its sleep loop cannot act before its next queued event (or an
        undelivered interrupt), while a node paused mid-computation can
        act as soon as it resumes.  ``None`` means the node is idle with
        an empty queue — only external input can ever wake it.
        """
        if self._paused_in_sleep and not self.pending_interrupts:
            if self._event_queue:
                return max(self.time_cycles, self._event_queue[0][0])
            return None
        return self.time_cycles

    def shrink_pause(self, horizon_cycles: int) -> None:
        """Pull the pause horizon in (called on the execution thread).

        The network invokes this when a transmission during the current
        slice makes an earlier peer reaction possible than the horizon
        assumed.  Runs on the node's own execution thread, so mutating the
        queue and horizon is race-free.
        """
        horizon = max(int(horizon_cycles), self.time_cycles + 1)
        if horizon >= self.end_cycles:
            return
        if self.pause_cycles and self.pause_cycles <= horizon:
            return
        self.pause_cycles = horizon
        heapq.heappush(self._event_queue,
                       (horizon, self._next_seq(), _noop))

    def _pause_gate(self) -> None:
        """Park the execution thread until the scheduler grants a horizon."""
        while (self.pause_cycles and self.time_cycles >= self.pause_cycles
               and not self._abort):
            self._status = "paused"
            self._paused_evt.set()
            self._resume_evt.wait()
            self._resume_evt.clear()
        if self._abort:
            raise _SimulationFinished()

    def _exec_main(self) -> None:
        """Execution-thread body: the legacy :meth:`run` epilogue, resumable."""
        try:
            self.interpreter.call(self.program.entry, [])
            self._status = "returned"
        except _SimulationFinished:
            self._status = "finished"
        except NodeHalted as halt:
            self.halted = True
            self.halt_code = halt.code
            if self.end_cycles > self.time_cycles:
                self.sleep_cycles += self.end_cycles - self.time_cycles
                self.time_cycles = self.end_cycles
            self._status = "finished"
        except MemoryError_ as fault:
            self._run_error = SafetyFault(str(fault))
        except BaseException as error:  # pragma: no cover - defensive
            self._run_error = error
        finally:
            self._paused_evt.set()


def _noop() -> None:
    """Horizon sentinel callback: wakes the poll fast path, does nothing."""


#: Sentinels are pause-pattern artifacts, not program state: ``snapshot``
#: recognizes the tag and drops them (the next grant plants fresh ones).
_noop.__event_desc__ = ("noop",)  # type: ignore[attr-defined]
