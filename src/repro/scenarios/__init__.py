"""Fault-injection and adversarial scenarios for Safe TinyOS builds.

The paper's central claim is behavioural: a safe build *detects* memory
corruption that an unsafe build silently absorbs.  This package makes
that claim testable as data.  A :class:`~repro.scenarios.faults.FaultPlan`
describes a seeded, reproducible set of adversities — bit flips in node
memory, payload corruption past the CRC, crafted malformed packets,
node kills and reboot-rejoin churn — and the
:class:`~repro.scenarios.runner.ScenarioRunner` (imported lazily by
``Workbench.run_scenario`` to keep this package free of api-layer
imports) executes the same plan under multiple build variants, compares
each run against a fault-free golden run of the same variant, and
classifies every (variant, fault) cell as ``detected``, ``crash``,
``silent-corruption`` or ``benign``.
"""

from repro.scenarios.faults import (
    DEFAULT_FAULT_NAMES,
    KILL_HALT_CODE,
    BitFlipFault,
    Fault,
    FaultPlan,
    NodeKillFault,
    NodeRebootFault,
    PacketInjectFault,
    PayloadCorruptFault,
    default_fault,
    fault_from_dict,
)
from repro.scenarios.injector import ScenarioInjector, craft_packet

__all__ = [
    "DEFAULT_FAULT_NAMES",
    "KILL_HALT_CODE",
    "BitFlipFault",
    "Fault",
    "FaultPlan",
    "NodeKillFault",
    "NodeRebootFault",
    "PacketInjectFault",
    "PayloadCorruptFault",
    "ScenarioInjector",
    "craft_packet",
    "default_fault",
    "fault_from_dict",
]
