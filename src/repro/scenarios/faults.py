"""Fault specifications: what to inject, where, and when.

A :class:`FaultPlan` is *data* in the same sense the ``repro.api`` specs
are: frozen dataclasses of numbers and strings, JSON-round-trippable
(``fault_from_dict(fault.to_dict()) == fault``), seeded, and canonically
serializable so scenario specs can derive stable content keys from them.
The plan describes injections; arming them against a live network is the
:class:`~repro.scenarios.injector.ScenarioInjector`'s job.

The five fault kinds map to the ROADMAP's adversarial-scenario taxonomy:

* :class:`BitFlipFault` — an SEU-style single-bit upset in a node's global
  memory at a scheduled virtual time (pointer-slot aware; see
  :meth:`~repro.avrora.memory.MemorySystem.flip_bit`).
* :class:`PayloadCorruptFault` — on-air payload corruption applied after
  :meth:`~repro.avrora.network.Channel.packet_fate` with the CRC refreshed,
  so the corruption sails *past* the receiver's CRC check.
* :class:`PacketInjectFault` — a crafted, malformed packet (oversized
  length field under a valid CRC) delivered through the radio or the UART
  ``inject_frame`` path.
* :class:`NodeKillFault` — fail-stop node churn: the node halts at a
  scheduled time and stays down.
* :class:`NodeRebootFault` — reboot-and-rejoin churn: the node's memory
  and device state roll back to a checkpoint taken earlier in the same
  run (the PR 6 snapshot machinery, applied mid-run), losing everything
  since — pending interrupts and half-received frames included.

Every scheduled time is an absolute virtual millisecond, so injections are
bit-identical across runs and worker partitionings by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

#: One TOS wire message: header (5) + payload (29) + crc (2).  Restated
#: from ``repro.tinyos.messages`` so this spec layer stays import-light
#: (the injector, which builds real frames, imports the proper constants).
_WIRE_LENGTH = 36

#: Halt code of an induced :class:`NodeKillFault` — distinguishable from
#: program-initiated halts (``__ccured_fail`` exits with code 1) so the
#: verdict classifier never counts an injected kill as a crash.
KILL_HALT_CODE = 0xDEAD


def _check_ms(name: str, value: int) -> None:
    if not isinstance(value, int) or value <= 0:
        raise ValueError(f"{name} must be a positive integer millisecond, "
                         f"got {value!r}")


@dataclass(frozen=True)
class Fault:
    """Base class: one injection, serializable and content-addressable."""

    kind: ClassVar[str] = ""

    #: Whether this fault changes what the network *does* rather than what
    #: its nodes *hold*.  Input faults (crafted packets, node churn) alter
    #: the traffic pattern by design, so any node's behaviour legitimately
    #: diverges from the fault-free golden run — the classifier judges them
    #: only by detected failures, unexpected crashes and silently absorbed
    #: memory violations.  State faults (bit flips, in-flight payload
    #: corruption) leave the input schedule untouched, so full behavioural
    #: fingerprints are compared.
    perturbs_inputs: ClassVar[bool] = False

    def to_dict(self) -> dict:
        data = {"kind": self.kind}
        for spec_field in fields(self):
            data[spec_field.name] = getattr(self, spec_field.name)
        return data

    def label(self) -> str:
        """Row label in verdict matrices; unique within typical plans."""
        return self.kind

    #: Node positions whose *own* divergence this fault induces by design
    #: (churn targets; crafted-packet targets, which receive an input the
    #: golden run never saw).  The classifier skips full fingerprint
    #: comparison for these nodes but still screens them for silently
    #: absorbed memory violations.
    def induced_nodes(self) -> tuple[int, ...]:
        return ()


@dataclass(frozen=True)
class BitFlipFault(Fault):
    """Flip one bit of a global object on one node at ``at_ms``.

    Attributes:
        node: Node *position* in the network (0-based), not its address.
        object: Name of the global :class:`~repro.avrora.memory.MemoryObject`.
        offset: Byte offset within the object.
        bit: Bit to flip.  For offsets holding pointers the stored pointer
            is advanced by ``1 << bit`` bytes (an address-register upset);
            for plain bytes, bits 0-7 XOR the byte.
        at_ms: Virtual milliseconds into the run.
    """

    kind: ClassVar[str] = "bit_flip"

    node: int = 0
    object: str = "RadioCRCPacketC__radio_rx_ptr"
    offset: int = 0
    bit: int = 5
    at_ms: int = 300

    def __post_init__(self):
        _check_ms("bit_flip.at_ms", self.at_ms)
        if self.offset < 0:
            raise ValueError(f"bit_flip.offset must be >= 0, "
                             f"got {self.offset}")
        if self.bit < 0:
            raise ValueError(f"bit_flip.bit must be >= 0, got {self.bit}")

    def label(self) -> str:
        return f"bit-flip@{self.object}"


@dataclass(frozen=True)
class PayloadCorruptFault(Fault):
    """Corrupt cross-node radio payloads on the air, past the CRC.

    Each surviving packet's corruption decision is a pure hash of the
    scenario seed and the packet's ``(src, dst, sequence)`` link identity
    — the same partition-invariance contract as
    :meth:`~repro.avrora.network.Channel.packet_fate` — so sharded runs
    corrupt byte-identically.

    Attributes:
        probability: Fraction of surviving packets corrupted, in (0, 1].
        flips: Payload bytes XOR-ed per corrupted packet (>= 1).
        fix_crc: Recompute the wire CRC after corrupting, so the packet
            passes the receiver's CRC check and the corruption reaches the
            application (the attack the paper's safety checks are the last
            line of defence against).  ``False`` models plain channel
            noise, which the CRC is expected to catch.
    """

    kind: ClassVar[str] = "payload_corrupt"

    probability: float = 1.0
    flips: int = 1
    fix_crc: bool = True

    def __post_init__(self):
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"payload_corrupt.probability must be in "
                             f"(0, 1], got {self.probability}")
        if self.flips < 1:
            raise ValueError(f"payload_corrupt.flips must be >= 1, "
                             f"got {self.flips}")

    def label(self) -> str:
        return "payload-corrupt" if self.fix_crc else "payload-noise"


@dataclass(frozen=True)
class PacketInjectFault(Fault):
    """Deliver one crafted, malformed packet to a node at ``at_ms``.

    The frame is a full TOS wire message whose *length field* claims
    ``claimed_length`` payload bytes — far beyond the 29 the struct holds
    — under a freshly computed, valid CRC.  Defensive receive paths clamp
    or reject it; a receive path that trusts the header walks off the end
    of the message buffer.

    Attributes:
        node: Target node position.
        via: ``"radio"`` (over-the-air delivery) or ``"uart"`` (the serial
            ``inject_frame`` path).
        at_ms: Virtual milliseconds into the run.
        am_type: Active-message type of the crafted packet.
        claimed_length: Value of the length header field (0-255).
        dest: Destination address (broadcast by default, so group/address
            filters pass).
    """

    kind: ClassVar[str] = "packet_inject"
    perturbs_inputs: ClassVar[bool] = True

    node: int = 0
    via: str = "radio"
    at_ms: int = 400
    am_type: int = 250
    claimed_length: int = 255
    dest: int = 0xFFFF

    def __post_init__(self):
        _check_ms("packet_inject.at_ms", self.at_ms)
        if self.via not in ("radio", "uart"):
            raise ValueError(f"packet_inject.via must be 'radio' or "
                             f"'uart', got {self.via!r}")
        if not 0 <= self.claimed_length <= 0xFF:
            raise ValueError(f"packet_inject.claimed_length must fit one "
                             f"byte, got {self.claimed_length}")

    def label(self) -> str:
        return f"packet-inject@{self.via}"

    def induced_nodes(self) -> tuple[int, ...]:
        # The target's raw fingerprint always diverges (it received an
        # extra input); only absorbed violations, checks or crashes there
        # say anything about safety.
        return (self.node,)


@dataclass(frozen=True)
class NodeKillFault(Fault):
    """Fail-stop one node at ``at_ms``; it stays down for the rest."""

    kind: ClassVar[str] = "node_kill"
    perturbs_inputs: ClassVar[bool] = True

    node: int = 0
    at_ms: int = 500

    def __post_init__(self):
        _check_ms("node_kill.at_ms", self.at_ms)

    def label(self) -> str:
        return f"kill@n{self.node}"

    def induced_nodes(self) -> tuple[int, ...]:
        return (self.node,)


@dataclass(frozen=True)
class NodeRebootFault(Fault):
    """Roll one node back to a mid-run checkpoint: reboot-and-rejoin.

    At ``checkpoint_ms`` the node's memory image and device state are
    captured (in-run, via the snapshot machinery); at ``at_ms`` they are
    restored in place and volatile inputs — pending interrupts, the radio
    receive FIFO, half-received UART bytes — are cleared.  The node loses
    everything between the two instants and rejoins the network from its
    checkpointed state, timers still armed.
    """

    kind: ClassVar[str] = "node_reboot"
    perturbs_inputs: ClassVar[bool] = True

    node: int = 0
    checkpoint_ms: int = 300
    at_ms: int = 800

    def __post_init__(self):
        _check_ms("node_reboot.checkpoint_ms", self.checkpoint_ms)
        _check_ms("node_reboot.at_ms", self.at_ms)
        if self.at_ms <= self.checkpoint_ms:
            raise ValueError(
                f"node_reboot: at_ms ({self.at_ms}) must be after "
                f"checkpoint_ms ({self.checkpoint_ms})")

    def label(self) -> str:
        return f"reboot@n{self.node}"

    def induced_nodes(self) -> tuple[int, ...]:
        return (self.node,)


#: Registry: serialized ``kind`` tag → fault class.
FAULT_KINDS: dict[str, type] = {
    cls.kind: cls for cls in (BitFlipFault, PayloadCorruptFault,
                              PacketInjectFault, NodeKillFault,
                              NodeRebootFault)
}


def fault_from_dict(data: dict) -> Fault:
    """Rebuild one fault from its :meth:`Fault.to_dict` form."""
    kind = data.get("kind")
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        raise KeyError(f"unknown fault kind {kind!r}; known: "
                       f"{sorted(FAULT_KINDS)}")
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of injections, evaluated one fault per run.

    Attributes:
        faults: The injections.  The runner executes each fault in its own
            simulation, so verdicts are attributable per fault.
        seed: Seed of every stochastic injection decision (currently the
            payload corruptor's per-packet hash).  Independent of the
            channel seed: the same network trajectory can be attacked
            differently.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        if not self.faults:
            raise ValueError("FaultPlan needs at least one fault")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(f"FaultPlan.seed must be a non-negative "
                             f"integer, got {self.seed!r}")
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise ValueError(f"FaultPlan.faults must hold Fault "
                                 f"objects, got {fault!r}")

    def labels(self) -> list[str]:
        """Per-fault row labels, disambiguated when a label repeats."""
        seen: dict[str, int] = {}
        out = []
        for fault in self.faults:
            label = fault.label()
            count = seen.get(label, 0)
            seen[label] = count + 1
            out.append(f"{label}#{count + 1}" if count else label)
        return out

    def max_node(self) -> int:
        """Largest node position any fault targets (-1 if none targeted)."""
        positions = [getattr(fault, "node") for fault in self.faults
                     if hasattr(fault, "node")]
        return max(positions) if positions else -1

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(faults=tuple(fault_from_dict(entry)
                                for entry in data["faults"]),
                   seed=data.get("seed", 0))


#: ``--faults`` shorthand names accepted by the CLI and ``default_fault``.
DEFAULT_FAULT_NAMES = ("bit-flip", "payload", "packet", "kill", "reboot")


def default_fault(name: str, node_count: int = 2):
    """The canonical instance of one named fault kind.

    The defaults target the receive path of node 0 (the base station of
    non-broadcast topologies) for corruption faults and the last node for
    churn, which is what the headline Surge scenario wants; bespoke plans
    construct the dataclasses directly.
    """
    last = max(0, node_count - 1)
    if name == "bit-flip":
        return BitFlipFault(node=0, object="RadioCRCPacketC__radio_rx_ptr",
                            offset=0, bit=5, at_ms=300)
    if name == "payload":
        return PayloadCorruptFault(probability=1.0, flips=1, fix_crc=True)
    if name == "packet":
        return PacketInjectFault(node=0, via="radio", at_ms=400,
                                 am_type=250, claimed_length=255)
    if name == "kill":
        return NodeKillFault(node=last, at_ms=500)
    if name == "reboot":
        return NodeRebootFault(node=last, checkpoint_ms=300, at_ms=800)
    raise KeyError(f"unknown fault name {name!r}; known: "
                   f"{DEFAULT_FAULT_NAMES}")
