"""Executing fault plans across build variants and classifying the outcome.

The runner answers the paper's question as a table: *what does each build
variant do when this exact adversity happens?*  For every variant it
first takes (or reuses) a fault-free **golden run** fingerprint, then
replays the same seeded simulation once per fault with a
:class:`~repro.scenarios.injector.ScenarioInjector` armed, and classifies
each run against the verdict lattice:

``detected``
    The safety layer reported at least one new
    :class:`~repro.avrora.node.FailureRecord` — a bounds or pointer check
    caught the corruption (the safe-build outcome the paper argues for).
``crash``
    A node halted without a failure report and without being told to
    (induced kills use a reserved halt code) — fail-stop, but blind.
``silent-corruption``
    No detection, no crash, yet the mote kept going on corrupted state.
    For *state* faults (bit flips, in-flight payload corruption) the
    golden run saw identical inputs, so any per-node fingerprint
    divergence qualifies.  For *input* faults (crafted packets, node
    churn — ``Fault.perturbs_inputs``) behavioural divergence is expected
    by design, so only silently absorbed out-of-bounds accesses count.
``benign``
    None of the above — the fault landed somewhere that never mattered,
    or was handled defensively.

Everything is deterministic: plans are seeded, the channel and corruptor
hash per-packet, and injections ride the snapshot-able event queue — so a
verdict matrix is a pure function of (spec, plan) and reruns bit-identically
at any worker count.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Optional

from repro.api.specs import TRAFFIC_BASE, TRAFFIC_DEFAULT, BuildSpec
from repro.api.workbench import (
    plan_store_attach,
    plan_store_persist,
    run_network,
)
from repro.avrora.network import Channel, Network
from repro.avrora.node import Node
from repro.scenarios.faults import KILL_HALT_CODE, Fault
from repro.scenarios.injector import ScenarioInjector
from repro.toolchain.contexts import duty_cycle_context

if TYPE_CHECKING:
    from repro.api.specs import ScenarioSpec
    from repro.api.workbench import Workbench

#: Verdicts, strongest first — the order the lattice is evaluated in.
VERDICTS = ("detected", "crash", "silent-corruption", "benign")

#: Positions of the fingerprint fields the classifier reads by index.
_FP_HALTED, _FP_FAILURES, _FP_VIOLATIONS = 0, 2, 3


def node_fingerprint(node: Node) -> tuple:
    """An externally visible behavioural fingerprint of one mote.

    Everything here is bit-identical across worker counts (the sharded
    kernel's contract), so fingerprint comparison never confuses
    partitioning artefacts with corruption.
    """
    sent = node.radio.packets_sent
    return (
        bool(node.halted),
        node.halt_code,
        len(node.failures),
        node.memory_violations,
        node.leds.state.value,
        node.leds.state.changes,
        node.leds.state.red_toggles,
        len(sent),
        hashlib.sha256(b"".join(sent)).hexdigest()[:16],
        node.radio.packets_received,
        node.radio.packets_dropped,
        hashlib.sha256(bytes(node.uart.sent_bytes)).hexdigest()[:16],
        node.interpreter.statements_executed,
    )


def classify(network: Network, golden: tuple[tuple, ...],
             fault: Fault) -> str:
    """Place one faulted run in the verdict lattice (see module docstring)."""
    nodes = network.nodes
    golden_failures = sum(fp[_FP_FAILURES] for fp in golden)
    if sum(len(node.failures) for node in nodes) > golden_failures:
        return "detected"
    for position, node in enumerate(nodes):
        induced_halt = node.halt_code == KILL_HALT_CODE
        if node.halted and not induced_halt \
                and not golden[position][_FP_HALTED]:
            return "crash"
    for position, node in enumerate(nodes):
        if fault.perturbs_inputs or position in fault.induced_nodes():
            # Divergence here is expected by design: the node was killed,
            # rebooted, or the network's traffic pattern itself changed
            # (a crafted packet is an input the golden run never saw, and
            # its influence propagates).  Silently *absorbed*
            # out-of-bounds accesses still count: a lenient build
            # swallowing them is exactly the corruption the verdict is
            # after.
            if node.memory_violations > golden[position][_FP_VIOLATIONS]:
                return "silent-corruption"
        elif node_fingerprint(node) != golden[position]:
            return "silent-corruption"
    return "benign"


class ScenarioRunner:
    """Runs fault plans through a :class:`~repro.api.workbench.Workbench`.

    The runner owns the **golden-run cache**: fault-free fingerprints are
    keyed by (variant build key, simulation parameters), so an N-variant ×
    M-fault scenario costs N golden runs — and re-running scenarios (or
    different plans) against the same variants costs zero more.
    """

    def __init__(self, workbench: "Workbench"):
        self.workbench = workbench
        self._golden: dict[tuple, tuple[tuple, ...]] = {}
        self.golden_runs = 0
        self.golden_hits = 0
        #: Per-variant ``code_cache`` telemetry from the last :meth:`run`
        #: (a warm plan cache shows ``lowerings == 0`` for every variant).
        self.plan_cache_stats: dict[str, dict] = {}

    # -- simulation plumbing ---------------------------------------------------

    @staticmethod
    def _sim_key(spec: "ScenarioSpec", build_key: str) -> tuple:
        return (build_key, spec.node_count, spec.seconds, spec.traffic,
                spec.topology, spec.loss, spec.seed)

    def _run(self, spec: "ScenarioSpec", program,
             injector: Optional[ScenarioInjector]) -> Network:
        traffic = duty_cycle_context(spec.app) \
            if spec.traffic in (TRAFFIC_DEFAULT, TRAFFIC_BASE) else None
        channel = Channel(topology=spec.topology, loss=spec.loss,
                          seed=spec.seed)
        return run_network(
            program, seconds=spec.seconds, node_count=spec.node_count,
            traffic=traffic, channel=channel,
            traffic_first_node_only=(spec.traffic == TRAFFIC_BASE),
            workers=spec.workers,
            prepare=injector.arm if injector is not None else None)

    def golden_fingerprints(self, spec: "ScenarioSpec", build_key: str,
                            program) -> tuple[tuple, ...]:
        """Fault-free per-node fingerprints for one variant (cached)."""
        key = self._sim_key(spec, build_key)
        cached = self._golden.get(key)
        if cached is not None:
            self.golden_hits += 1
            return cached
        self.golden_runs += 1
        network = self._run(spec, program, None)
        fingerprints = tuple(node_fingerprint(node)
                             for node in network.nodes)
        return self._golden.setdefault(key, fingerprints)

    # -- the verdict table -----------------------------------------------------

    def run(self, spec: "ScenarioSpec") -> dict:
        """Execute the full variant × fault matrix for one scenario.

        Returns plain data (the workbench wraps it into a
        :class:`~repro.api.records.ScenarioRecord`):
        ``verdicts[fault_index][variant_index]``, a ``details`` dict keyed
        ``"<fault label>|<variant>"``, and golden-cache statistics.
        """
        faults = spec.plan.faults
        labels = spec.plan.labels()
        columns: list[list[str]] = []     # [variant][fault]
        details: dict[str, dict] = {}
        runs_before, hits_before = self.golden_runs, self.golden_hits
        for variant in spec.variants:
            build_spec = BuildSpec(app=spec.app, variant=variant)
            result = self.workbench.build_result(build_spec)
            # With ``spec.plan_cache`` set, hydrate the variant's lowering
            # plans from the persistent store before any run: the golden
            # run and every faulted run then lower nothing on a warm
            # cache, and a cold cache is written back once per variant.
            attach = plan_store_attach(
                getattr(spec, "plan_cache", None),
                build_spec.content_key(), result.program)
            golden = self.golden_fingerprints(
                spec, build_spec.content_key(), result.program)
            cells: list[str] = []
            for label, fault in zip(labels, faults):
                injector = ScenarioInjector(fault, seed=spec.plan.seed)
                network = self._run(spec, result.program, injector)
                verdict = classify(network, golden, fault)
                cells.append(verdict)
                details[f"{label}|{variant}"] = self._detail(
                    network, golden, fault, verdict)
            self.plan_cache_stats[variant] = plan_store_persist(
                attach, result.program)
            columns.append(cells)
        verdicts = tuple(tuple(columns[v][f]
                               for v in range(len(spec.variants)))
                         for f in range(len(faults)))
        # Per-scenario deltas, not the runner's cumulative counters: the
        # record must not depend on what else the session ran before it.
        return {
            "verdicts": verdicts,
            "details": details,
            "golden": {"runs": self.golden_runs - runs_before,
                       "cache_hits": self.golden_hits - hits_before},
        }

    @staticmethod
    def _detail(network: Network, golden: tuple[tuple, ...], fault: Fault,
                verdict: str) -> dict:
        """Worker-invariant facts about one faulted run.

        Only reconstructed node state belongs here: the injector's
        ``fired`` log and corruption counter are per-process and would
        differ under the sharded kernel, breaking the record's
        bit-identity across worker counts.
        """
        induced = set(fault.induced_nodes())
        diverged = [position for position, node in enumerate(network.nodes)
                    if position not in induced
                    and node_fingerprint(node) != golden[position]]
        return {
            "verdict": verdict,
            "failures": sum(len(node.failures) for node in network.nodes),
            "halted": [position
                       for position, node in enumerate(network.nodes)
                       if node.halted],
            "memory_violations": sum(node.memory_violations
                                     for node in network.nodes),
            "diverged_nodes": diverged,
        }
