"""Arming faults against a live network: the injection layer.

A :class:`ScenarioInjector` takes one :class:`~repro.scenarios.faults.Fault`
(plus the plan seed) and wires it into a booted, not-yet-run
:class:`~repro.avrora.network.Network`:

* Scheduled faults (bit flips, crafted packets, kills, checkpoints and
  reboots) become ordinary node events at absolute virtual cycles, tagged
  with picklable ``("scenario", ...)`` descriptors and resolvable through
  ``Node.scenario_resolver`` — so the sharded kernel can snapshot a node
  with pending injections, restore it in a forked worker, and fire them
  there, bit-identically.
* Payload corruption installs ``Network.corruptor``, whose per-packet
  decision is a pure hash of ``(scenario seed, src, dst, sequence)`` —
  the same partition-invariance contract the channel's ``packet_fate``
  honours, applied in both the in-process and the sharded transmit path.

When no fault is armed the simulator pays nothing: the hooks are ``None``
checks off the statement-execution hot path.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.avrora.network import Network, _mix64, crc16, encode_tos_msg
from repro.avrora.node import Node, NodeHalted
from repro.scenarios.faults import (
    KILL_HALT_CODE,
    BitFlipFault,
    Fault,
    NodeKillFault,
    NodeRebootFault,
    PacketInjectFault,
    PayloadCorruptFault,
)
from repro.tinyos import messages as msgs

#: Seed-domain separator: the corruptor's hash stream must never collide
#: with the channel's ``packet_fate`` stream even when both use seed 0.
_CORRUPT_SALT = 0x5CE11A71


def craft_packet(fault: PacketInjectFault) -> bytes:
    """The malformed wire frame a :class:`PacketInjectFault` delivers.

    A full-size TOS message whose length field claims
    ``fault.claimed_length`` bytes of payload, CRC valid over the lie —
    the classic crafted-header attack: every byte is within the frame,
    only the metadata is hostile.
    """
    frame = bytearray(encode_tos_msg(fault.dest, fault.am_type,
                                     bytes(range(1, msgs.TOSH_DATA_LENGTH + 1)),
                                     group=msgs.TOS_DEFAULT_GROUP))
    frame[4] = fault.claimed_length & 0xFF
    crc = crc16(bytes(frame[:msgs.TOS_MSG_WIRE_LENGTH - 2]))
    frame[-2] = crc & 0xFF
    frame[-1] = (crc >> 8) & 0xFF
    return bytes(frame)


class ScenarioInjector:
    """Arms one fault against a network; tracks what it induced.

    One injector serves one simulation run.  ``arm`` must be called after
    the nodes are booted and added but before ``Network.run``; the
    injector then lives as long as the network (forked shard workers
    inherit it, which is what keeps scheduled injections resolvable on
    both sides of the process boundary).
    """

    def __init__(self, fault: Fault, seed: int = 0):
        self.fault = fault
        self.seed = seed
        #: Log of injections that actually fired: (kind, node_position,
        #: cycles, description).  Per-process — under the sharded kernel
        #: a worker-side firing is not visible here; records that need
        #: the log run with ``workers=1`` (the runner's default).
        self.fired: list[tuple] = []
        #: Packets the corruptor mutated (per-process, like ``fired``).
        self.corrupted_packets = 0
        self._checkpoints: dict[int, dict] = {}

    # -- arming ----------------------------------------------------------------

    def arm(self, network: Network) -> None:
        fault = self.fault
        if isinstance(fault, PayloadCorruptFault):
            network.corruptor = self._corruptor(fault)
            return
        position = fault.node  # type: ignore[attr-defined]
        if not 0 <= position < len(network.nodes):
            raise ValueError(
                f"{fault.label()}: node position {position} outside the "
                f"network ({len(network.nodes)} node(s))")
        node = network.nodes[position]
        node.scenario_resolver = self._resolver(node, position)
        if isinstance(fault, BitFlipFault):
            self._schedule(node, self._ms_to_cycles(node, fault.at_ms),
                           self._flip_callback(node, position))
        elif isinstance(fault, PacketInjectFault):
            self._schedule(node, self._ms_to_cycles(node, fault.at_ms),
                           self._inject_callback(node, position))
        elif isinstance(fault, NodeKillFault):
            self._schedule(node, self._ms_to_cycles(node, fault.at_ms),
                           self._kill_callback(node, position))
        elif isinstance(fault, NodeRebootFault):
            self._schedule(node,
                           self._ms_to_cycles(node, fault.checkpoint_ms),
                           self._checkpoint_callback(node, position))
            self._schedule(node, self._ms_to_cycles(node, fault.at_ms),
                           self._reboot_callback(node, position))
        else:
            raise TypeError(f"cannot arm fault {fault!r}")

    @staticmethod
    def _ms_to_cycles(node: Node, at_ms: int) -> int:
        return (node.clock_hz * at_ms) // 1000

    @staticmethod
    def _schedule(node: Node, when_cycles: int,
                  callback: Callable[[], None]) -> None:
        node.schedule_at(max(when_cycles, node.time_cycles + 1), callback)

    # -- event callbacks --------------------------------------------------------
    #
    # Every callback carries a ``("scenario", tag)`` descriptor and is
    # rebuilt by ``_resolver`` from that tag alone, so pending injections
    # survive the snapshot/restore round trip of the sharded kernel.

    def _resolver(self, node: Node, position: int) -> Callable[
            [tuple], Optional[Callable[[], None]]]:
        def resolve(desc: tuple) -> Optional[Callable[[], None]]:
            if desc[0] != "scenario":
                return None
            tag = desc[1]
            if tag == "flip":
                return self._flip_callback(node, position)
            if tag == "inject":
                return self._inject_callback(node, position)
            if tag == "kill":
                return self._kill_callback(node, position)
            if tag == "checkpoint":
                return self._checkpoint_callback(node, position)
            if tag == "reboot":
                return self._reboot_callback(node, position)
            return None

        return resolve

    def _flip_callback(self, node: Node, position: int) -> Callable[[], None]:
        fault = self.fault

        def flip() -> None:
            what = node.memory.flip_bit(fault.object, fault.offset,
                                        fault.bit)
            self.fired.append(("bit_flip", position, node.time_cycles, what))

        flip.__event_desc__ = ("scenario", "flip")  # type: ignore
        return flip

    def _inject_callback(self, node: Node, position: int) -> Callable[[], None]:
        fault = self.fault
        frame = craft_packet(fault)

        def inject() -> None:
            if fault.via == "uart":
                node.uart.inject_frame(frame)
            else:
                node.radio.deliver(frame)
            self.fired.append(("packet_inject", position, node.time_cycles,
                               f"{len(frame)}B via {fault.via}, length "
                               f"field {fault.claimed_length}"))

        inject.__event_desc__ = ("scenario", "inject")  # type: ignore
        return inject

    def _kill_callback(self, node: Node, position: int) -> Callable[[], None]:
        def kill() -> None:
            self.fired.append(("node_kill", position, node.time_cycles,
                               "fail-stop"))
            raise NodeHalted(KILL_HALT_CODE, "induced node kill")

        kill.__event_desc__ = ("scenario", "kill")  # type: ignore
        return kill

    def _checkpoint_callback(self, node: Node,
                             position: int) -> Callable[[], None]:
        def checkpoint() -> None:
            self._checkpoints[position] = {
                "memory": node.memory.snapshot(),
                "devices": node.bus.snapshot(),
            }
            self.fired.append(("checkpoint", position, node.time_cycles,
                               "state captured"))

        checkpoint.__event_desc__ = ("scenario", "checkpoint")  # type: ignore
        return checkpoint

    def _reboot_callback(self, node: Node, position: int) -> Callable[[], None]:
        def reboot() -> None:
            saved = self._checkpoints.get(position)
            if saved is None:  # checkpoint event lost (should not happen)
                raise NodeHalted(KILL_HALT_CODE,
                                 "reboot without checkpoint")
            node.memory.restore(saved["memory"])
            node.bus.restore(saved["devices"])
            # Volatile inputs do not survive a reboot: undelivered
            # interrupts and half-received bytes are gone.  The event
            # queue deliberately survives — armed timers keep firing, so
            # the node genuinely *rejoins* rather than going comatose.
            node.pending_interrupts.clear()
            node.uart.pending_rx.clear()
            self.fired.append(("node_reboot", position, node.time_cycles,
                               "rolled back to checkpoint"))

        reboot.__event_desc__ = ("scenario", "reboot")  # type: ignore
        return reboot

    # -- payload corruption ----------------------------------------------------

    def _corruptor(self, fault: PayloadCorruptFault) -> Callable[
            [int, int, int, bytes], Optional[bytes]]:
        seed = (self.seed ^ _CORRUPT_SALT) & ((1 << 64) - 1)
        probability = fault.probability
        flips = fault.flips
        fix_crc = fault.fix_crc
        data_len = msgs.TOSH_DATA_LENGTH
        wire_len = msgs.TOS_MSG_WIRE_LENGTH

        def corrupt(src: int, dst: int, sequence: int,
                    payload: bytes) -> Optional[bytes]:
            mix = _mix64(seed, src, dst, sequence)
            if probability < 1.0 and (mix >> 11) * (2.0 ** -53) >= probability:
                return None
            if len(payload) < wire_len:
                return None
            frame = bytearray(payload)
            for flip in range(flips):
                submix = _mix64(seed, src ^ 0x100, dst, sequence * 31 + flip)
                index = 5 + submix % data_len  # a payload byte, not header
                frame[index] ^= 1 << ((submix >> 32) & 7)
            if fix_crc:
                crc = crc16(bytes(frame[:wire_len - 2]))
                frame[wire_len - 2] = crc & 0xFF
                frame[wire_len - 1] = (crc >> 8) & 0xFF
            self.corrupted_packets += 1
            return bytes(frame)

        return corrupt
