"""The abstract-domain interface.

A domain controls how much information the analysis keeps about integer
values: how two values met at a join point are combined, and how a value
that keeps changing around a loop is widened so the fixpoint terminates.
Pointer information is handled uniformly by the engine and is not part of
the pluggable interface (as in cXprop, where the pointer analysis is shared
by all domains).
"""

from __future__ import annotations

import abc

from repro.cxprop.values import Value


class AbstractDomain(abc.ABC):
    """Strategy object consulted by the dataflow engine."""

    #: Human-readable name used in reports and configuration.
    name: str = "abstract"

    @abc.abstractmethod
    def join(self, left: Value, right: Value) -> Value:
        """Combine two values flowing into the same program point."""

    @abc.abstractmethod
    def widen(self, previous: Value, current: Value, ctype) -> Value:
        """Accelerate convergence for a value still changing around a loop.

        Args:
            previous: The value at the loop head on the previous iteration.
            current: The newly computed value.
            ctype: Declared type of the variable (may be None).
        """

    def describe(self) -> str:
        """One-line description used by reports."""
        return self.name
