"""The small-value-set domain.

Tracks each integer variable as an explicit set of up to ``MAX_VALUES``
constants before falling back to a range.  This captures bit-mask state
machines (LED states, flag bytes) more precisely than plain intervals while
staying cheap.  It is the kind of custom domain the cXprop design exists to
make easy to plug in; it is exercised by the ablation benchmarks.
"""

from __future__ import annotations

from repro.cxprop.domains.base import AbstractDomain
from repro.cxprop.values import Value

#: Maximum number of distinct constants tracked before widening to a range.
MAX_VALUES = 8


class ValueSetDomain(AbstractDomain):
    """Small explicit sets of constants, approximated by their hull on overflow.

    The engine's :class:`~repro.cxprop.values.Value` carries ranges, so the
    set is represented by its convex hull once it grows past
    ``MAX_VALUES`` distinct constants; below that threshold joins stay exact
    when the hull happens to contain only the set members (which is true for
    contiguous sets, the common case for counters and indices).
    """

    name = "valueset"

    def join(self, left: Value, right: Value) -> Value:
        joined = left.join(right)
        if joined.is_int and joined.range_width() + 1 > MAX_VALUES \
                and not (left.is_int and right.is_int
                         and _adjacent(left, right)):
            return joined
        return joined

    def widen(self, previous: Value, current: Value, ctype) -> Value:
        if previous == current:
            return current
        if current.is_int and current.range_width() + 1 <= MAX_VALUES:
            return current
        return current.widen_to_type(ctype)


def _adjacent(left: Value, right: Value) -> bool:
    return not (left.hi < right.lo - 1 or right.hi < left.lo - 1)
