"""The constant-propagation domain.

Each integer variable is either a single known constant or unknown (its full
type range).  Joining two different constants loses all information, which
makes this the cheapest — and least precise — domain.  It is sufficient for
classic constant propagation and for folding null checks, but it cannot
eliminate bounds checks that need value ranges.
"""

from __future__ import annotations

from repro.cxprop.domains.base import AbstractDomain
from repro.cxprop.values import Value


class ConstantDomain(AbstractDomain):
    """Single-constant-or-unknown integer tracking."""

    name = "constant"

    def join(self, left: Value, right: Value) -> Value:
        joined = left.join(right)
        if joined.is_int and joined.lo != joined.hi:
            # Not a single constant any more: drop to the full range so the
            # engine treats it as unknown.
            return Value.of_range(*_widest(left, right))
        return joined

    def widen(self, previous: Value, current: Value, ctype) -> Value:
        if previous == current:
            return current
        return current.widen_to_type(ctype)


def _widest(left: Value, right: Value) -> tuple[int, int]:
    from repro.cxprop.values import FULL_RANGE

    return FULL_RANGE
