"""Pluggable abstract domains for the integer component of the analysis.

cXprop's distinguishing design point (and the subject of its companion
paper) is that the dataflow engine is parameterized by an abstract domain.
The reproduction keeps that structure: the engine asks the configured domain
how to join and widen integer ranges, so swapping the constant-propagation
domain for the interval domain (or a custom one) changes the precision of
every downstream optimization without touching the engine.
"""

from repro.cxprop.domains.base import AbstractDomain
from repro.cxprop.domains.constant import ConstantDomain
from repro.cxprop.domains.interval import IntervalDomain
from repro.cxprop.domains.valueset import ValueSetDomain

DOMAINS = {
    "constant": ConstantDomain,
    "interval": IntervalDomain,
    "valueset": ValueSetDomain,
}


def make_domain(name: str) -> AbstractDomain:
    """Instantiate a domain by name (``constant``, ``interval``, ``valueset``)."""
    try:
        return DOMAINS[name]()
    except KeyError:
        raise KeyError(f"unknown abstract domain {name!r}; "
                       f"expected one of {sorted(DOMAINS)}") from None


__all__ = [
    "AbstractDomain",
    "ConstantDomain",
    "IntervalDomain",
    "ValueSetDomain",
    "DOMAINS",
    "make_domain",
]
