"""The interval domain.

Each integer variable is tracked as a closed range ``[lo, hi]``.  This is
the default domain of the toolchain because bounds-check elimination —
showing that an array index stays below the array length — fundamentally
needs ranges.  Widening jumps a still-growing bound to the variable's type
limit after a few iterations, which keeps loop analysis linear.
"""

from __future__ import annotations

from repro.cxprop.domains.base import AbstractDomain
from repro.cxprop.values import Value


class IntervalDomain(AbstractDomain):
    """Closed integer ranges with type-limit widening."""

    name = "interval"

    def join(self, left: Value, right: Value) -> Value:
        return left.join(right)

    def widen(self, previous: Value, current: Value, ctype) -> Value:
        if previous == current:
            return current
        if not (previous.is_int and current.is_int):
            return current.widen_to_type(ctype)
        widened_type = Value.of_type(ctype) if ctype is not None else None
        lo = current.lo
        hi = current.hi
        if current.lo < previous.lo:
            lo = widened_type.lo if widened_type is not None and \
                widened_type.is_int else current.lo
        if current.hi > previous.hi:
            hi = widened_type.hi if widened_type is not None and \
                widened_type.is_int else current.hi
        return Value.of_range(lo, hi)
