"""Copy propagation.

A small, local pass (Section 2.1: "we implemented a copy propagation pass
that eliminates useless variables and increases cXprop's dataflow analysis
precision slightly").  Within each straight-line region it replaces reads of
a local that was just assigned another local, a parameter, or a literal with
the source of the copy; dead-code elimination then removes the now-unused
temporary.  The pass matters most after inlining, which introduces one
temporary per inlined parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cminor import ast_nodes as ast
from repro.cminor.program import Program
from repro.cminor.typecheck import check_program, local_types
from repro.cminor.visitor import map_expression, statement_expressions, walk_expression


@dataclass
class CopyPropReport:
    """Statistics from one copy-propagation run."""

    copies_propagated: int = 0
    functions_touched: int = 0


_Copy = Union[ast.Identifier, ast.IntLiteral]


class _BlockPropagator:
    """Propagates copies within one function."""

    def __init__(self, program: Program, func: ast.FunctionDef,
                 address_taken: set[str]):
        self.program = program
        self.func = func
        self.locals_ = local_types(func)
        self.address_taken = address_taken
        self.propagated = 0

    def run(self) -> int:
        self._process_block(self.func.body, {})
        return self.propagated

    # -- block processing -----------------------------------------------------

    def _process_block(self, block: ast.Block, copies: dict[str, _Copy]) -> None:
        for stmt in block.stmts:
            self._substitute(stmt, copies)
            self._update(stmt, copies)
            self._recurse(stmt, copies)

    def _recurse(self, stmt: ast.Stmt, copies: dict[str, _Copy]) -> None:
        # Nested control flow gets a copy of the map; changes inside do not
        # leak back out (conservative but simple).
        from repro.cminor.visitor import child_blocks

        inner_copies = dict(copies)
        if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            # A loop body may run many times: a copy established before the
            # loop is only valid inside it if the body never reassigns either
            # side, so prune against the body's assignments *before*
            # descending (propagating i=0 into "i = i + 1" would be unsound).
            assigned_inside = self._assigned_in(stmt)
            for name in list(inner_copies):
                source = inner_copies[name]
                if name in assigned_inside or \
                        (isinstance(source, ast.Identifier)
                         and source.name in assigned_inside):
                    inner_copies.pop(name, None)

        for block in child_blocks(stmt):
            if block is stmt:
                continue
            self._process_block(block, dict(inner_copies))
        if isinstance(stmt, ast.Block):
            self._process_block(stmt, dict(inner_copies))
        if isinstance(stmt, (ast.If, ast.While, ast.DoWhile, ast.For, ast.Atomic,
                             ast.Block)):
            # After a branch or loop, assignments inside may have changed
            # anything they mention; drop affected copies.
            assigned = self._assigned_in(stmt)
            for name in list(copies):
                source = copies[name]
                if name in assigned:
                    copies.pop(name, None)
                elif isinstance(source, ast.Identifier) and source.name in assigned:
                    copies.pop(name, None)

    def _assigned_in(self, stmt: ast.Stmt) -> set[str]:
        from repro.cminor.visitor import walk_statements_single

        assigned: set[str] = set()
        for inner in walk_statements_single(stmt):
            if isinstance(inner, ast.Assign) and isinstance(inner.lvalue, ast.Identifier):
                assigned.add(inner.lvalue.name)
            elif isinstance(inner, ast.VarDecl):
                assigned.add(inner.name)
            elif isinstance(inner, ast.Assign):
                assigned.add("*")
        if "*" in assigned:
            assigned |= set(self.locals_) | set(self.program.globals)
        return assigned

    # -- per statement -----------------------------------------------------------

    def _substitute(self, stmt: ast.Stmt, copies: dict[str, _Copy]) -> None:
        if not copies:
            return

        def replace(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.Identifier) and expr.name in copies:
                source = copies[expr.name]
                clone = ast.Identifier(source.name) if isinstance(source, ast.Identifier) \
                    else ast.IntLiteral(source.value)
                clone.loc = expr.loc
                clone.ctype = expr.ctype
                self.propagated += 1
                return clone
            return expr

        if isinstance(stmt, ast.Assign):
            stmt.rvalue = map_expression(stmt.rvalue, replace)
            if isinstance(stmt.lvalue, (ast.Index, ast.Member, ast.Deref)):
                self._substitute_indices(stmt.lvalue, replace)
        elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
            stmt.init = map_expression(stmt.init, replace)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = map_expression(stmt.expr, replace)
        elif isinstance(stmt, ast.If):
            stmt.cond = map_expression(stmt.cond, replace)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            stmt.value = map_expression(stmt.value, replace)

    def _substitute_indices(self, lvalue: ast.Expr, replace) -> None:
        if isinstance(lvalue, ast.Index):
            lvalue.index = map_expression(lvalue.index, replace)
            self._substitute_indices(lvalue.base, replace)
        elif isinstance(lvalue, ast.Member):
            self._substitute_indices(lvalue.base, replace)
        elif isinstance(lvalue, ast.Deref):
            lvalue.pointer = map_expression(lvalue.pointer, replace)

    def _update(self, stmt: ast.Stmt, copies: dict[str, _Copy]) -> None:
        target: Optional[str] = None
        source: Optional[ast.Expr] = None
        if isinstance(stmt, ast.Assign) and isinstance(stmt.lvalue, ast.Identifier):
            target, source = stmt.lvalue.name, stmt.rvalue
        elif isinstance(stmt, ast.VarDecl):
            target, source = stmt.name, stmt.init
        if target is None:
            if self._has_call(stmt):
                self._invalidate_globals(copies)
            return
        # The assigned variable no longer equals anything it did before, and
        # any copy that referred to it is stale.
        copies.pop(target, None)
        for name in list(copies):
            known = copies[name]
            if isinstance(known, ast.Identifier) and known.name == target:
                copies.pop(name, None)
        if self._has_call(stmt):
            self._invalidate_globals(copies)
            return
        if target not in self.locals_ or target in self.address_taken:
            return
        if isinstance(source, ast.IntLiteral):
            copies[target] = source
        elif isinstance(source, ast.Identifier):
            name = source.name
            if (name in self.locals_ and name not in self.address_taken) or \
                    name in {p.name for p in self.func.params}:
                copies[target] = source

    def _invalidate_globals(self, copies: dict[str, _Copy]) -> None:
        for name in list(copies):
            known = copies[name]
            if isinstance(known, ast.Identifier) and known.name in self.program.globals:
                copies.pop(name, None)

    def _has_call(self, stmt: ast.Stmt) -> bool:
        for expr in statement_expressions(stmt):
            if any(isinstance(node, ast.Call) for node in walk_expression(expr)):
                return True
        return False


def propagate_copies(program: Program,
                     address_taken_locals: Optional[dict[str, set[str]]] = None
                     ) -> CopyPropReport:
    """Run copy propagation over every function of ``program``."""
    report = CopyPropReport()
    address_taken_locals = address_taken_locals or {}
    for func in program.iter_functions():
        taken = address_taken_locals.get(func.name, set())
        propagator = _BlockPropagator(program, func, taken)
        count = propagator.run()
        if count:
            report.copies_propagated += count
            report.functions_touched += 1
    if report.copies_propagated:
        program.invalidate_analysis()
        check_program(program)
    return report
