"""Abstract values for the cXprop analyses.

A value describes what the analyzer knows about one variable at one program
point.  It is a small sum type:

* ``BOTTOM`` — unreachable / no information yet,
* ``INT`` — an integer in a closed range ``[lo, hi]``,
* ``PTR`` — a pointer into a set of known memory objects with a byte-offset
  range, possibly null,
* ``TOP`` — anything at all.

The integer component is deliberately range-shaped so that both the
constant-propagation and the interval abstract domains (the "pluggable
domains" of cXprop) can share it: the domain object decides how ranges are
joined and widened, the :class:`Value` operations do the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cminor import typesys as ty

#: Sentinel range meaning "any 32-bit-or-smaller integer".
FULL_RANGE = (-(1 << 31), (1 << 32) - 1)


@dataclass(frozen=True)
class MemoryTarget:
    """One memory object a pointer may refer to.

    Attributes:
        region: ``"global"``, ``"local"``, ``"string"``, or ``"unknown"``.
        name: Object identifier (global name, ``function:local``, or a
            string-literal label).
        size: Object size in bytes; 0 when unknown.
    """

    region: str
    name: str
    size: int = 0

    def __str__(self) -> str:
        return f"{self.region}:{self.name}({self.size}B)"


UNKNOWN_TARGET = MemoryTarget("unknown", "?", 0)


@dataclass(frozen=True)
class Value:
    """One abstract value.  Immutable; operations return new values.

    Values are *interned* behind the hash-consed factory :func:`_make`:
    constructing the same abstract value twice yields the same object, so
    the widening loop's joins and state comparisons can short-circuit on
    identity instead of comparing fields (see ``join_states``).
    """

    kind: str  # "bottom", "int", "ptr", "top"
    lo: int = 0
    hi: int = 0
    targets: frozenset[MemoryTarget] = frozenset()
    offset_lo: int = 0
    offset_hi: int = 0
    may_be_null: bool = False

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def bottom() -> "Value":
        return _BOTTOM

    @staticmethod
    def top() -> "Value":
        return _TOP

    @staticmethod
    def of_int(value: int) -> "Value":
        return _make("int", value, value)

    @staticmethod
    def of_range(lo: int, hi: int) -> "Value":
        if lo > hi:
            lo, hi = hi, lo
        return _make("int", lo, hi)

    @staticmethod
    def of_type(ctype: Optional[ty.CType]) -> "Value":
        """The most general value a variable of ``ctype`` can hold."""
        if ctype is None:
            return _TOP
        cached = _OF_TYPE.get(ctype)
        if cached is not None:
            return cached
        if ctype.is_integer():
            lo, hi = ty.integer_limits(ctype if not isinstance(ctype, ty.BoolType)
                                       else ty.UINT8)
            if isinstance(ctype, ty.BoolType):
                lo, hi = 0, 1
            value = Value.of_range(lo, hi)
        elif ctype.is_pointer():
            value = Value.any_pointer()
        else:
            value = _TOP
        _OF_TYPE[ctype] = value
        return value

    @staticmethod
    def null_pointer() -> "Value":
        return _NULL_POINTER

    @staticmethod
    def pointer_to(target: MemoryTarget, offset_lo: int = 0,
                   offset_hi: int = 0) -> "Value":
        return _make("ptr", 0, 0, frozenset([target]), offset_lo, offset_hi,
                     False)

    @staticmethod
    def pointer_to_many(targets: Iterable[MemoryTarget], offset_lo: int,
                        offset_hi: int, may_be_null: bool) -> "Value":
        return _make("ptr", 0, 0, frozenset(targets), offset_lo, offset_hi,
                     may_be_null)

    @staticmethod
    def any_pointer() -> "Value":
        return _ANY_POINTER

    # -- queries ----------------------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return self.kind == "bottom"

    @property
    def is_top(self) -> bool:
        return self.kind == "top"

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_pointer(self) -> bool:
        return self.kind == "ptr"

    def as_constant(self) -> Optional[int]:
        """The single integer this value denotes, if it is a constant."""
        if self.is_int and self.lo == self.hi:
            return self.lo
        return None

    def is_definitely_nonzero(self) -> bool:
        if self.is_int:
            return self.lo > 0 or self.hi < 0
        if self.is_pointer:
            return not self.may_be_null and bool(self.targets)
        return False

    def is_definitely_zero(self) -> bool:
        if self.is_int:
            return self.lo == 0 and self.hi == 0
        if self.is_pointer:
            return self.may_be_null and not self.targets
        return False

    def has_unknown_target(self) -> bool:
        return any(t.region == "unknown" or t.size == 0 for t in self.targets)

    def range_width(self) -> int:
        if not self.is_int:
            return 1 << 32
        return self.hi - self.lo

    # -- lattice ------------------------------------------------------------------

    def join(self, other: "Value") -> "Value":
        """Least upper bound."""
        if self is other:
            # Interning makes equal values identical, so this fast path
            # covers every already-converged variable in the fixpoint loop.
            return self
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self.is_top or other.is_top:
            return Value.top()
        if self.is_int and other.is_int:
            return Value.of_range(min(self.lo, other.lo), max(self.hi, other.hi))
        if self.is_pointer and other.is_pointer:
            return Value.pointer_to_many(
                self.targets | other.targets,
                min(self.offset_lo, other.offset_lo),
                max(self.offset_hi, other.offset_hi),
                self.may_be_null or other.may_be_null,
            )
        # Mixed integer / pointer information (pointer-integer casts): give up.
        return Value.top()

    def widen_to_type(self, ctype: Optional[ty.CType]) -> "Value":
        """Widen an integer value to its type range (used to force loop exit)."""
        if self.is_int and ctype is not None and ctype.is_integer():
            return Value.of_type(ctype)
        if self.is_int:
            return Value.of_range(*FULL_RANGE)
        if self.is_pointer:
            return Value.any_pointer()
        return Value.top()

    def clamp_to_type(self, ctype: Optional[ty.CType]) -> "Value":
        """Intersect an integer value with the representable range of ``ctype``.

        If the value may overflow the type, the result is the full type range
        (two's-complement wrap-around is not tracked precisely).
        """
        if ctype is None or not self.is_int or not ctype.is_integer():
            return self
        lo, hi = ty.integer_limits(ctype if not isinstance(ctype, ty.BoolType)
                                   else ty.UINT8)
        if isinstance(ctype, ty.BoolType):
            lo, hi = 0, 1
        if self.lo >= lo and self.hi <= hi:
            return self
        return Value.of_range(lo, hi)

    def __str__(self) -> str:
        if self.is_bottom:
            return "_|_"
        if self.is_top:
            return "T"
        if self.is_int:
            if self.lo == self.hi:
                return str(self.lo)
            return f"[{self.lo},{self.hi}]"
        targets = ",".join(sorted(str(t) for t in self.targets)) or "none"
        null = "|null" if self.may_be_null else ""
        return f"ptr<{targets}>@[{self.offset_lo},{self.offset_hi}]{null}"


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------

#: Intern table for every constructed value.  Bounded so a pathological
#: analysis cannot grow it without limit; once full, values are returned
#: uninterned (correct, just without the identity fast paths).
_INTERN: dict[tuple, Value] = {}
_INTERN_LIMIT = 1 << 17

#: ``Value.of_type`` results per declared type (hot in variable lookups).
_OF_TYPE: dict[ty.CType, Value] = {}


def _make(kind: str, lo: int = 0, hi: int = 0,
          targets: frozenset[MemoryTarget] = frozenset(),
          offset_lo: int = 0, offset_hi: int = 0,
          may_be_null: bool = False) -> Value:
    """The hash-consed :class:`Value` factory."""
    key = (kind, lo, hi, targets, offset_lo, offset_hi, may_be_null)
    value = _INTERN.get(key)
    if value is None:
        value = Value(kind, lo, hi, targets, offset_lo, offset_hi,
                      may_be_null)
        if len(_INTERN) < _INTERN_LIMIT:
            _INTERN[key] = value
    return value


_BOTTOM = _make("bottom")
_TOP = _make("top")
_NULL_POINTER = _make("ptr", may_be_null=True)
_ANY_POINTER = _make("ptr", targets=frozenset([UNKNOWN_TARGET]),
                     offset_lo=FULL_RANGE[0], offset_hi=FULL_RANGE[1],
                     may_be_null=True)


# ---------------------------------------------------------------------------
# Arithmetic and comparison transfer functions
# ---------------------------------------------------------------------------


def add_values(left: Value, right: Value) -> Value:
    if left.is_int and right.is_int:
        return Value.of_range(left.lo + right.lo, left.hi + right.hi)
    return Value.top()


def sub_values(left: Value, right: Value) -> Value:
    if left.is_int and right.is_int:
        return Value.of_range(left.lo - right.hi, left.hi - right.lo)
    return Value.top()


def mul_values(left: Value, right: Value) -> Value:
    if left.is_int and right.is_int:
        products = [left.lo * right.lo, left.lo * right.hi,
                    left.hi * right.lo, left.hi * right.hi]
        return Value.of_range(min(products), max(products))
    return Value.top()


def div_values(left: Value, right: Value) -> Value:
    if left.is_int and right.is_int and right.lo == right.hi and right.lo != 0:
        quotients = sorted((left.lo // right.lo, left.hi // right.lo))
        return Value.of_range(quotients[0], quotients[1])
    return Value.top()


def mod_values(left: Value, right: Value) -> Value:
    if left.is_int and right.is_int and right.lo == right.hi and right.lo > 0:
        if 0 <= left.lo and left.hi < right.lo:
            return Value.of_range(left.lo, left.hi)
        return Value.of_range(0, right.lo - 1)
    return Value.top()


def shift_left_values(left: Value, right: Value) -> Value:
    if left.is_int and right.is_int and right.lo == right.hi and 0 <= right.lo <= 31:
        return Value.of_range(left.lo << right.lo, left.hi << right.lo)
    return Value.top()


def shift_right_values(left: Value, right: Value) -> Value:
    if left.is_int and right.is_int and right.lo == right.hi and 0 <= right.lo <= 31 \
            and left.lo >= 0:
        return Value.of_range(left.lo >> right.lo, left.hi >> right.lo)
    return Value.top()


def bitand_values(left: Value, right: Value) -> Value:
    lc, rc = left.as_constant(), right.as_constant()
    if lc is not None and rc is not None:
        return Value.of_int(lc & rc)
    # x & mask with a constant non-negative mask is bounded by the mask.
    if left.is_int and rc is not None and rc >= 0 and left.lo >= 0:
        return Value.of_range(0, rc)
    if right.is_int and lc is not None and lc >= 0 and right.lo >= 0:
        return Value.of_range(0, lc)
    if left.is_int and right.is_int and left.lo >= 0 and right.lo >= 0:
        return Value.of_range(0, max(left.hi, right.hi))
    return Value.top()


def bitor_values(left: Value, right: Value) -> Value:
    lc, rc = left.as_constant(), right.as_constant()
    if lc is not None and rc is not None:
        return Value.of_int(lc | rc)
    if left.is_int and right.is_int and left.lo >= 0 and right.lo >= 0:
        upper = (1 << max(left.hi.bit_length(), right.hi.bit_length(), 1)) - 1
        return Value.of_range(0, upper)
    return Value.top()


def bitxor_values(left: Value, right: Value) -> Value:
    lc, rc = left.as_constant(), right.as_constant()
    if lc is not None and rc is not None:
        return Value.of_int(lc ^ rc)
    if left.is_int and right.is_int and left.lo >= 0 and right.lo >= 0:
        upper = (1 << max(left.hi.bit_length(), right.hi.bit_length(), 1)) - 1
        return Value.of_range(0, upper)
    return Value.top()


#: Comparison result constants.
TRUE_VALUE = Value.of_int(1)
FALSE_VALUE = Value.of_int(0)
BOOL_VALUE = Value.of_range(0, 1)


def compare_values(op: str, left: Value, right: Value) -> Value:
    """Evaluate a comparison abstractly; result is one of true/false/either."""
    if left.is_pointer or right.is_pointer:
        return _compare_pointers(op, left, right)
    if not (left.is_int and right.is_int):
        return BOOL_VALUE
    if op == "==":
        if left.as_constant() is not None and left.as_constant() == right.as_constant():
            return TRUE_VALUE
        if left.hi < right.lo or left.lo > right.hi:
            return FALSE_VALUE
        return BOOL_VALUE
    if op == "!=":
        inverted = compare_values("==", left, right)
        return _invert_bool(inverted)
    if op == "<":
        if left.hi < right.lo:
            return TRUE_VALUE
        if left.lo >= right.hi:
            return FALSE_VALUE
        return BOOL_VALUE
    if op == "<=":
        if left.hi <= right.lo:
            return TRUE_VALUE
        if left.lo > right.hi:
            return FALSE_VALUE
        return BOOL_VALUE
    if op == ">":
        return compare_values("<", right, left)
    if op == ">=":
        return compare_values("<=", right, left)
    return BOOL_VALUE


def _compare_pointers(op: str, left: Value, right: Value) -> Value:
    """Pointer comparisons: only null tests are evaluated precisely."""
    pointer, other = (left, right) if left.is_pointer else (right, left)
    if other.is_int and other.as_constant() == 0:
        if op in ("==",):
            if pointer.is_definitely_nonzero():
                return FALSE_VALUE
            if pointer.is_definitely_zero():
                return TRUE_VALUE
            return BOOL_VALUE
        if op in ("!=",):
            if pointer.is_definitely_nonzero():
                return TRUE_VALUE
            if pointer.is_definitely_zero():
                return FALSE_VALUE
            return BOOL_VALUE
    if left.is_pointer and right.is_pointer and op in ("==", "!="):
        if left.targets and right.targets and not (left.targets & right.targets) \
                and not (left.may_be_null and right.may_be_null) \
                and not left.has_unknown_target() and not right.has_unknown_target():
            return FALSE_VALUE if op == "==" else TRUE_VALUE
    return BOOL_VALUE


def _invert_bool(value: Value) -> Value:
    if value == TRUE_VALUE:
        return FALSE_VALUE
    if value == FALSE_VALUE:
        return TRUE_VALUE
    return BOOL_VALUE


def logical_not(value: Value) -> Value:
    if value.is_definitely_nonzero():
        return FALSE_VALUE
    if value.is_definitely_zero():
        return TRUE_VALUE
    return BOOL_VALUE


def truth_of(value: Value) -> Optional[bool]:
    """Definite truth value of a condition, or None when unknown."""
    if value.is_definitely_nonzero():
        return True
    if value.is_definitely_zero():
        return False
    return None
