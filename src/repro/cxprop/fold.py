"""Constant propagation and branch folding.

This pass is where the abstract interpretation pays off:

* integer reads whose abstract value is a single constant are replaced by
  literals ("propagating constant data into code", which later lets dead-
  data elimination drop the variables themselves);
* ``if`` statements whose condition is abstractly decided are replaced by
  the taken branch — including, crucially, the inlined bodies of CCured
  checks (``if (p == 0) __ccured_fail(...)``), whose failure branches become
  unreachable once the pointer analysis knows ``p``;
* conditions that become empty no-ops are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.typecheck import check_program
from repro.cminor.visitor import (
    map_expression,
    statement_expressions,
    transform_block,
    walk_expression,
)
from repro.cxprop.dataflow import AnalysisResult, FunctionAnalysis, _FlowContext
from repro.cxprop.domains.base import AbstractDomain
from repro.cxprop.interproc import WholeProgramFacts
from repro.cxprop.values import truth_of


@dataclass
class FoldReport:
    """Statistics from one folding pass."""

    branches_folded: int = 0
    constants_substituted: int = 0
    conditions_removed: int = 0
    functions_touched: set[str] = field(default_factory=set)

    @property
    def total(self) -> int:
        return self.branches_folded + self.constants_substituted + \
            self.conditions_removed

    def merge(self, other: "FoldReport") -> None:
        self.branches_folded += other.branches_folded
        self.constants_substituted += other.constants_substituted
        self.conditions_removed += other.conditions_removed
        self.functions_touched |= other.functions_touched


#: Builtins that are pure (no side effects), so conditions calling them may
#: be folded away when their value is known.
_PURE_BUILTINS = {"__bounds_ok", "__align_ok"}


def _expression_has_calls(expr: ast.Expr) -> bool:
    """Whether folding the expression away could discard a side effect."""
    return any(isinstance(node, ast.Call) and node.callee not in _PURE_BUILTINS
               for node in walk_expression(expr))


def _protected_identifier_ids(stmt: ast.Stmt) -> set[int]:
    """Identifier nodes that must never be replaced by constants.

    These are the named lvalue roots under address-of operators: rewriting
    ``&x`` into ``&5`` would be meaningless.  Index expressions under the
    address-of are still fair game.
    """
    protected: set[int] = set()

    def protect_lvalue(lvalue: ast.Expr) -> None:
        if isinstance(lvalue, ast.Identifier):
            protected.add(id(lvalue))
        elif isinstance(lvalue, (ast.Index, ast.Member)):
            protect_lvalue(lvalue.base)
        # Deref roots are evaluated as ordinary pointer expressions.

    for expr in statement_expressions(stmt):
        for node in walk_expression(expr):
            if isinstance(node, ast.AddressOf):
                protect_lvalue(node.lvalue)
    return protected


class _Folder:
    """Folds one function using its analysis results."""

    def __init__(self, program: Program, func: ast.FunctionDef,
                 facts: WholeProgramFacts, domain: Optional[AbstractDomain]):
        self.program = program
        self.func = func
        self.facts = facts
        self.analysis = FunctionAnalysis(program, func, facts, domain)
        self.result: AnalysisResult = self.analysis.run()
        self.report = FoldReport()

    def run(self) -> FoldReport:
        transform_block(self.func.body, self._rewrite)
        if self.report.total:
            self.report.functions_touched.add(self.func.name)
        return self.report

    # -- statement rewriting -----------------------------------------------------

    def _rewrite(self, stmt: ast.Stmt):
        state = self.result.state_before(stmt)
        if state is None:
            return stmt
        in_atomic = self.result.in_atomic(stmt)
        if isinstance(stmt, ast.If):
            folded = self._fold_if(stmt, state, in_atomic)
            if folded is not stmt:
                return folded
        self._substitute_constants(stmt, state, in_atomic)
        return stmt

    def _fold_if(self, stmt: ast.If, state, in_atomic: bool):
        if _expression_has_calls(stmt.cond):
            return stmt
        ctx = _FlowContext(self.analysis, state, in_atomic)
        value = self.analysis.evaluator.eval(stmt.cond, ctx)
        truth = truth_of(value)
        if truth is True:
            self.report.branches_folded += 1
            return list(stmt.then_body.stmts)
        if truth is False:
            self.report.branches_folded += 1
            if stmt.else_body is not None:
                return list(stmt.else_body.stmts)
            return []
        if not stmt.then_body.stmts and \
                (stmt.else_body is None or not stmt.else_body.stmts):
            # Both branches empty: keep only the condition's side effects
            # (there are none — calls were excluded above).
            self.report.conditions_removed += 1
            return []
        return stmt

    # -- constant substitution -----------------------------------------------------

    def _substitute_constants(self, stmt: ast.Stmt, state, in_atomic: bool) -> None:
        ctx = _FlowContext(self.analysis, state, in_atomic)
        protected = _protected_identifier_ids(stmt)

        def replace(expr: ast.Expr) -> ast.Expr:
            if not isinstance(expr, ast.Identifier):
                return expr
            if id(expr) in protected:
                return expr
            ctype = expr.ctype
            if ctype is None or not ctype.is_integer():
                return expr
            if not self._substitutable(expr.name, in_atomic):
                return expr
            value = self.analysis.lookup(state, expr.name, in_atomic)
            constant = value.as_constant()
            if constant is None:
                return expr
            literal = ast.IntLiteral(constant)
            literal.loc = expr.loc
            literal.ctype = ctype
            self.report.constants_substituted += 1
            return literal

        replace_guarded = replace

        if isinstance(stmt, ast.Assign):
            stmt.rvalue = map_expression(stmt.rvalue, replace_guarded)
            self._substitute_lvalue_indices(stmt.lvalue, replace_guarded)
        elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
            stmt.init = map_expression(stmt.init, replace_guarded)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = map_expression(stmt.expr, replace_guarded)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            stmt.value = map_expression(stmt.value, replace_guarded)
        elif isinstance(stmt, ast.If):
            stmt.cond = map_expression(stmt.cond, replace_guarded)
        del ctx

    def _substitute_lvalue_indices(self, lvalue: ast.Expr, replace) -> None:
        """Substitute constants only in the index parts of a store target."""
        if isinstance(lvalue, ast.Index):
            lvalue.index = map_expression(lvalue.index, replace)
            self._substitute_lvalue_indices(lvalue.base, replace)
        elif isinstance(lvalue, ast.Member):
            self._substitute_lvalue_indices(lvalue.base, replace)
        elif isinstance(lvalue, ast.Deref):
            lvalue.pointer = map_expression(lvalue.pointer, replace)

    def _substitutable(self, name: str, in_atomic: bool) -> bool:
        if name in self.analysis.locals_:
            return name not in self.analysis.address_taken
        if name in self.program.globals:
            var = self.program.lookup_global(name)
            if var is None or var.is_volatile:
                return False
            if name in self.facts.address_taken_globals:
                return False
            if name in self.facts.shared_variables and not in_atomic:
                # Outside atomic sections the lookup already degrades to the
                # invariant, which is only substitutable if genuinely constant
                # program-wide; that is still sound, so allow it.
                return True
            return True
        return False


def fold_program(program: Program, facts: WholeProgramFacts,
                 domain: Optional[AbstractDomain] = None) -> FoldReport:
    """Run constant propagation and branch folding over every function."""
    report = FoldReport()
    for func in program.iter_functions():
        folder = _Folder(program, func, facts, domain)
        report.merge(folder.run())
    if report.total:
        program.invalidate_analysis()
        check_program(program)
    return report
