"""cXprop: the whole-program dataflow analyzer and optimizer.

cXprop is the aggressive, concurrency-aware, whole-program optimizer the
paper uses to claw back the costs CCured introduces.  The reproduction has
the same architecture as the original:

* pluggable abstract domains for integer values
  (:mod:`repro.cxprop.domains`),
* a flow-sensitive abstract interpreter over each function
  (:mod:`repro.cxprop.dataflow`) on top of whole-program facts — global
  invariants, mod-sets, and the set of interrupt-shared variables
  (:mod:`repro.cxprop.interproc`),
* a conservative, pointer-aware race detector (:mod:`repro.cxprop.race`),
* a source-to-source function inliner (:mod:`repro.cxprop.inline`),
* transformation passes: constant/branch folding (:mod:`repro.cxprop.fold`),
  copy propagation (:mod:`repro.cxprop.copyprop`), aggressive dead code and
  dead data elimination (:mod:`repro.cxprop.dce`), and atomic-section
  optimization (:mod:`repro.cxprop.atomic_opt`),
* a driver that iterates the passes to a fixpoint
  (:mod:`repro.cxprop.driver`).
"""

from repro.cxprop.driver import CxpropConfig, CxpropReport, optimize_program
from repro.cxprop.inline import InlineReport, inline_program
from repro.cxprop.dce import DceReport, eliminate_dead_code
from repro.cxprop.race import pointer_aware_race_analysis

__all__ = [
    "CxpropConfig",
    "CxpropReport",
    "optimize_program",
    "InlineReport",
    "inline_program",
    "DceReport",
    "eliminate_dead_code",
    "pointer_aware_race_analysis",
]
