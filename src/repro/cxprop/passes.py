"""The cXprop layer's registered pipeline passes.

The historical cXprop driver loop — recompute whole-program facts, fold,
propagate copies, optimize atomic sections, eliminate dead code, repeat to a
fixpoint — is decomposed into one pass per transformation plus a facts pass,
combined by :class:`CxpropPass` (a ``FixpointPass``).  The facts computed at
the top of each round are shared by the round's passes through the context's
artifacts, preserving the original driver's semantics exactly (fold and
copy propagation of one round both see the facts computed *before* the
round's mutations).

The source-to-source inliner is registered here too (it lives in this
package), but remains a separate pipeline stage, as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.cminor.program import Program
from repro.cminor.typecheck import check_program
from repro.cxprop.atomic_opt import optimize_atomic_sections
from repro.cxprop.copyprop import propagate_copies
from repro.cxprop.dce import eliminate_dead_code
from repro.cxprop.domains import make_domain
from repro.cxprop.driver import CxpropConfig, CxpropReport, resolve_pointer_size
from repro.cxprop.fold import fold_program
from repro.cxprop.inline import InlineConfig, inline_program
from repro.cxprop.interproc import compute_whole_program_facts
from repro.toolchain.passes import (
    FixpointPass,
    Pass,
    PassContext,
    PassOutcome,
    register_pass,
)

#: Context artifact key under which the round's whole-program facts live.
FACTS_KEY = "cxprop.facts"


@register_pass("inline")
class InlinePass(Pass):
    """The source-to-source function inliner (separate stage, Section 2.1)."""

    name = "inline"

    def __init__(self, config: Optional[InlineConfig] = None):
        self.config = config

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "inline needs a program"
        report = inline_program(program, self.config)
        changed = (report.calls_inlined + report.calls_hoisted +
                   report.functions_removed)
        return PassOutcome(changed=changed, detail=report)

    def cache_key(self, variant=None) -> str:
        if self.config is None:
            return f"{self.name}[default]"
        return f"{self.name}[{self.config.size_limit}," \
               f"{self.config.caller_limit}," \
               f"{int(self.config.inline_single_call_site)}]"


@register_pass("cxprop.facts")
class CxpropFactsPass(Pass):
    """Recompute the whole-program facts consumed by the round's passes."""

    name = "cxprop.facts"
    invalidates_analysis = False

    def __init__(self, config: Optional[CxpropConfig] = None):
        self.config = config or CxpropConfig()

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "cxprop.facts needs a program"
        pointer_size = resolve_pointer_size(program, self.config)
        facts = compute_whole_program_facts(program, pointer_size)
        ctx.artifacts[FACTS_KEY] = facts
        return PassOutcome(changed=0, detail=None)


@register_pass("cxprop.fold")
class FoldPass(Pass):
    """Constant propagation and branch folding over the round's facts."""

    name = "cxprop.fold"

    def __init__(self, config: Optional[CxpropConfig] = None):
        self.config = config or CxpropConfig()
        self.domain = make_domain(self.config.domain)

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "cxprop.fold needs a program"
        facts = ctx.artifacts[FACTS_KEY]
        report = fold_program(program, facts, self.domain)
        return PassOutcome(changed=report.total, detail=report)


@register_pass("cxprop.copyprop")
class CopyPropPass(Pass):
    """Copy propagation (skipping address-taken locals from the facts)."""

    name = "cxprop.copyprop"

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "cxprop.copyprop needs a program"
        facts = ctx.artifacts[FACTS_KEY]
        report = propagate_copies(program, facts.address_taken_locals)
        return PassOutcome(changed=report.copies_propagated, detail=report)


@register_pass("cxprop.atomic")
class AtomicOptPass(Pass):
    """Atomic-section optimization (nesting removal, IRQ-save avoidance)."""

    name = "cxprop.atomic"

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "cxprop.atomic needs a program"
        report = optimize_atomic_sections(program)
        return PassOutcome(changed=report.nested_removed, detail=report)


@register_pass("cxprop.dce")
class DcePass(Pass):
    """Aggressive dead code and dead data elimination."""

    name = "cxprop.dce"

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "cxprop.dce needs a program"
        report = eliminate_dead_code(program)
        return PassOutcome(changed=report.total, detail=report)


@register_pass("cxprop")
class CxpropPass(FixpointPass):
    """The whole cXprop stage: the round passes iterated to a fixpoint."""

    def __init__(self, config: Optional[CxpropConfig] = None):
        self.config = config or CxpropConfig()
        body: list[Pass] = [CxpropFactsPass(self.config)]
        if self.config.enable_fold:
            body.append(FoldPass(self.config))
        if self.config.enable_copyprop:
            body.append(CopyPropPass())
        if self.config.enable_atomic_opt:
            body.append(AtomicOptPass())
        if self.config.enable_dce:
            body.append(DcePass())
        super().__init__("cxprop", body, max_rounds=self.config.max_rounds)

    def cache_key(self, variant=None) -> str:
        config = self.config
        enables = "".join(str(int(flag)) for flag in
                          (config.enable_fold, config.enable_copyprop,
                           config.enable_atomic_opt, config.enable_dce))
        return f"{self.name}[{config.domain},rounds={config.max_rounds}," \
               f"enables={enables},ptr={config.pointer_size}]"

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        outcome = super().run(program, ctx)
        ctx.artifacts.pop(FACTS_KEY, None)
        check_program(program)
        return outcome

    def summarize(self, rounds: int,
                  round_details: list[dict[str, object]]) -> CxpropReport:
        report = CxpropReport(rounds=rounds)
        for details in round_details:
            fold = details.get("cxprop.fold")
            if fold is not None:
                report.fold.merge(fold)
            copyprop = details.get("cxprop.copyprop")
            if copyprop is not None:
                report.copyprop.copies_propagated += copyprop.copies_propagated
                report.copyprop.functions_touched += copyprop.functions_touched
            atomic = details.get("cxprop.atomic")
            if atomic is not None:
                report.atomic.nested_removed += atomic.nested_removed
                report.atomic.irq_saves_avoided += atomic.irq_saves_avoided
                report.atomic.always_atomic_functions |= \
                    atomic.always_atomic_functions
            dce = details.get("cxprop.dce")
            if dce is not None:
                report.dce.functions_removed += dce.functions_removed
                report.dce.globals_removed += dce.globals_removed
                report.dce.dead_stores_removed += dce.dead_stores_removed
                report.dce.locals_removed += dce.locals_removed
                report.dce.statements_removed += dce.statements_removed
        return report
