"""Aggressive dead code and dead data elimination.

Section 2.1: "Unlike CCured's optimizer, which only attempts to remove its
own checks, cXprop will remove any part of a program that it can show is
dead or useless."  This pass removes, iterating to a fixpoint:

* functions unreachable from the program roots (``main``, tasks, interrupt
  handlers, anything ``spontaneous``),
* globals that are never referenced from reachable code,
* globals that are only ever *written* (dead data — the main source of the
  RAM reductions in Figure 3(b)), together with the stores to them,
* locals that are never read, together with their assignments,
* empty blocks, empty atomic sections and no-op statements.

Fat-pointer metadata globals (``__cc_meta_<p>``) are kept exactly as long as
the pointer ``p`` they describe stays in the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminor import ast_nodes as ast
from repro.cminor.callgraph import build_call_graph
from repro.cminor.program import Program
from repro.cminor.typecheck import local_types
from repro.cminor.visitor import (
    statement_expressions,
    transform_block,
    walk_expression,
    walk_statements,
)
from repro.ccured.instrument import METADATA_PREFIX


@dataclass
class DceReport:
    """Statistics from one dead-code-elimination run."""

    functions_removed: int = 0
    globals_removed: int = 0
    dead_stores_removed: int = 0
    locals_removed: int = 0
    statements_removed: int = 0
    rounds: int = 0

    @property
    def total(self) -> int:
        return (self.functions_removed + self.globals_removed +
                self.dead_stores_removed + self.locals_removed +
                self.statements_removed)


def _lvalue_root_name(lvalue: ast.Expr):
    if isinstance(lvalue, ast.Identifier):
        return lvalue.name
    if isinstance(lvalue, (ast.Index, ast.Member)):
        if isinstance(lvalue, ast.Member) and lvalue.arrow:
            return None
        return _lvalue_root_name(lvalue.base)
    return None


def _collect_global_usage(program: Program) -> tuple[set[str], set[str]]:
    """(globals read or address-taken, globals written) in the whole program."""
    read: set[str] = set()
    written: set[str] = set()
    global_names = set(program.globals)

    for func in program.iter_functions():
        locals_ = set(local_types(func))
        for stmt in walk_statements(func.body):
            if isinstance(stmt, ast.Assign):
                write_target = _lvalue_root_name(stmt.lvalue)
                if write_target in global_names and write_target not in locals_:
                    written.add(write_target)
            # Reads: every identifier appearing in the statement except a
            # plain-variable store target (``g = ...`` does not read ``g``,
            # but ``g[i] = ...`` keeps the array alive).  A read of the
            # store target inside its own right-hand side (``g = g + 1``,
            # the ubiquitous statistics counter) does not count either:
            # if nothing else ever observes ``g`` it is still dead data.
            exprs = list(statement_expressions(stmt))
            self_target = None
            if isinstance(stmt, ast.Assign) and isinstance(stmt.lvalue, ast.Identifier):
                exprs = [stmt.rvalue]
                self_target = stmt.lvalue.name
            for expr in exprs:
                for node in walk_expression(expr):
                    if isinstance(node, ast.Identifier):
                        if node.name == self_target:
                            continue
                        if node.name in global_names and node.name not in locals_:
                            read.add(node.name)

    # Globals referenced from other globals' initializers stay alive.
    for var in program.iter_globals():
        if var.init is None:
            continue
        for node in walk_expression(var.init):
            if isinstance(node, ast.Identifier) and node.name in global_names:
                read.add(node.name)
    return read, written


def _remove_unreachable_functions(program: Program, report: DceReport) -> bool:
    graph = build_call_graph(program)
    reachable = graph.reachable_from(program.root_functions())
    removed = False
    for func in list(program.iter_functions()):
        if func.name in reachable or func.is_spontaneous:
            continue
        program.remove_function(func.name)
        report.functions_removed += 1
        removed = True
    return removed


def _statement_has_side_effects(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.Call) for node in walk_expression(expr))


def _remove_dead_stores(program: Program, report: DceReport) -> bool:
    """Remove stores to write-only globals and never-read locals."""
    read, written = _collect_global_usage(program)
    global_names = set(program.globals)
    changed = False

    dead_globals = set()
    for name in written - read:
        var = program.lookup_global(name)
        if var is None or var.is_volatile:
            continue
        if not var.ctype.is_scalar():
            continue
        dead_globals.add(name)

    for func in program.iter_functions():
        locals_ = local_types(func)
        read_locals: set[str] = set()
        for stmt in walk_statements(func.body):
            exprs = list(statement_expressions(stmt))
            if isinstance(stmt, ast.Assign) and isinstance(stmt.lvalue, ast.Identifier):
                exprs = [stmt.rvalue]
            for expr in exprs:
                for node in walk_expression(expr):
                    if isinstance(node, ast.Identifier) and node.name in locals_:
                        read_locals.add(node.name)

        def rewrite(stmt: ast.Stmt):
            nonlocal changed
            if isinstance(stmt, ast.Assign) and isinstance(stmt.lvalue, ast.Identifier):
                name = stmt.lvalue.name
                is_dead_global = name in dead_globals and name not in locals_
                is_dead_local = (name in locals_ and name not in read_locals)
                if is_dead_global or is_dead_local:
                    changed = True
                    report.dead_stores_removed += 1
                    if _statement_has_side_effects(stmt.rvalue):
                        keep = ast.ExprStmt(stmt.rvalue)
                        keep.loc = stmt.loc
                        return keep
                    return None
            if isinstance(stmt, ast.VarDecl) and stmt.name not in read_locals:
                if stmt.init is not None and _statement_has_side_effects(stmt.init):
                    changed = True
                    report.locals_removed += 1
                    keep = ast.ExprStmt(stmt.init)
                    keep.loc = stmt.loc
                    return keep
                changed = True
                report.locals_removed += 1
                return None
            return stmt

        transform_block(func.body, rewrite)
    del global_names
    return changed


def _remove_unused_globals(program: Program, report: DceReport) -> bool:
    read, written = _collect_global_usage(program)
    referenced = read | written
    removed = False
    for var in list(program.iter_globals()):
        name = var.name
        if name.startswith(METADATA_PREFIX):
            base = name[len(METADATA_PREFIX):]
            if base in program.globals:
                continue
            program.remove_global(name)
            report.globals_removed += 1
            removed = True
            continue
        if name in referenced:
            continue
        if var.is_volatile:
            continue
        program.remove_global(name)
        report.globals_removed += 1
        removed = True
    return removed


def _remove_empty_statements(program: Program, report: DceReport) -> bool:
    changed = False

    def rewrite(stmt: ast.Stmt):
        nonlocal changed
        if isinstance(stmt, ast.Nop):
            changed = True
            report.statements_removed += 1
            return None
        if isinstance(stmt, ast.Block) and not stmt.stmts:
            changed = True
            report.statements_removed += 1
            return None
        if isinstance(stmt, ast.Atomic) and not stmt.body.stmts:
            changed = True
            report.statements_removed += 1
            return None
        if isinstance(stmt, ast.If) and not stmt.then_body.stmts and \
                (stmt.else_body is None or not stmt.else_body.stmts):
            if not _statement_has_side_effects(stmt.cond):
                changed = True
                report.statements_removed += 1
                return None
        if isinstance(stmt, ast.ExprStmt) and not _statement_has_side_effects(stmt.expr):
            changed = True
            report.statements_removed += 1
            return None
        return stmt

    for func in program.iter_functions():
        transform_block(func.body, rewrite)
    return changed


def eliminate_dead_code(program: Program, max_rounds: int = 6) -> DceReport:
    """Run dead code/data elimination to a fixpoint (bounded by ``max_rounds``)."""
    report = DceReport()
    for _round in range(max_rounds):
        changed = False
        changed |= _remove_unreachable_functions(program, report)
        changed |= _remove_empty_statements(program, report)
        changed |= _remove_dead_stores(program, report)
        changed |= _remove_unused_globals(program, report)
        report.rounds += 1
        if not changed:
            break
    if report.total:
        program.invalidate_analysis()
    return report
