"""The source-to-source function inliner.

Section 2.1: the toolchain includes its own CIL-level inliner because (a)
inlining gives the context sensitivity that cXprop's whole-program analysis
lacks — inlining a CCured check into its caller is what makes the check's
arguments analyzable — and (b) inlining before the back end produces ~5%
smaller executables than letting the back end inline the same functions.

The inliner is deliberately conservative about control flow: CMinor has no
``goto``, so a callee with early returns is wrapped in a one-trip loop and
its returns become ``break`` statements; callees that contain both loops and
early returns are left alone.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.callgraph import build_call_graph
from repro.cminor.program import Program
from repro.cminor.typecheck import check_program, local_types
from repro.cminor.visitor import (
    clone_block,
    count_statements,
    map_expression,
    statement_expressions,
    transform_block,
    walk_statements,
    walk_statements_single,
)

#: Callees larger than this many statements are not inlined unless they have
#: a single call site or are marked ``__inline``.
DEFAULT_SIZE_LIMIT = 20

#: Callers are not grown beyond this many statements.
DEFAULT_CALLER_LIMIT = 400

#: Functions that must never be inlined (the cold failure path must stay a
#: call so failure identifiers remain recognizable and code stays small).
NEVER_INLINE = {"__ccured_fail"}

_MARKER_RE = re.compile(r"__(?:inl|call)(\d+)")


def _temp_markers(program: Program):
    """A fresh temp-name counter, deterministic per program content.

    Temp names (``__callN`` hoists, ``__inlN_x`` inlined locals) must be a
    pure function of the program being transformed — not of how many other
    programs this process transformed before it — or two builds of one
    spec in one process diverge, and portable code-cache artifacts
    (:meth:`repro.avrora.engine.CodeCache.export_portable`) written by one
    build would name slots the next build's AST does not contain.  The
    counter restarts above any marker already present, so re-running a
    transform on an already-transformed program never reuses a name.
    """
    highest = 0
    for func in program.iter_functions():
        for name in local_types(func):
            match = _MARKER_RE.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
    return itertools.count(highest + 1)


@dataclass
class InlineConfig:
    """Inliner tuning knobs."""

    size_limit: int = DEFAULT_SIZE_LIMIT
    caller_limit: int = DEFAULT_CALLER_LIMIT
    inline_single_call_site: bool = True


@dataclass
class InlineReport:
    """Statistics for one inlining run."""

    calls_inlined: int = 0
    calls_hoisted: int = 0
    functions_removed: int = 0
    callers_touched: set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# Call normalization: hoist nested calls into temporaries
# ---------------------------------------------------------------------------


def _contains_call(expr: ast.Expr) -> bool:
    from repro.cminor.visitor import walk_expression

    return any(isinstance(node, ast.Call) for node in walk_expression(expr))


def _is_simple_call_position(stmt: ast.Stmt) -> bool:
    """Whether the statement already has calls only in inlinable positions."""
    if isinstance(stmt, ast.ExprStmt):
        expr = stmt.expr
        if isinstance(expr, ast.Call):
            return not any(_contains_call(arg) for arg in expr.args)
    if isinstance(stmt, (ast.Assign, ast.VarDecl)):
        rvalue = stmt.rvalue if isinstance(stmt, ast.Assign) else stmt.init
        if isinstance(rvalue, ast.Call):
            return not any(_contains_call(arg) for arg in rvalue.args)
    return False


def normalize_calls(program: Program) -> int:
    """Hoist nested calls into temporaries so every call is a whole statement.

    Returns the number of calls hoisted.
    """
    hoisted = 0
    counter = _temp_markers(program)
    for func in program.iter_functions():
        hoisted += _normalize_function(program, func, counter)
    if hoisted:
        check_program(program)
    return hoisted


def _normalize_function(program: Program, func: ast.FunctionDef,
                        counter) -> int:
    hoisted = 0

    def rewrite(stmt: ast.Stmt):
        nonlocal hoisted
        if _is_simple_call_position(stmt):
            return stmt
        prefix: list[ast.Stmt] = []

        def hoist(expr: ast.Expr) -> ast.Expr:
            nonlocal hoisted
            if not isinstance(expr, ast.Call):
                return expr
            callee = program.lookup_function(expr.callee)
            if callee is None or callee.return_type.is_void():
                return expr
            temp_name = f"__call{next(counter)}"
            decl = ast.VarDecl(temp_name, callee.return_type, expr)
            decl.loc = expr.loc
            prefix.append(decl)
            hoisted += 1
            replacement = ast.Identifier(temp_name)
            replacement.loc = expr.loc
            replacement.ctype = callee.return_type
            return replacement

        if isinstance(stmt, ast.Assign):
            if not isinstance(stmt.rvalue, ast.Call):
                stmt.rvalue = map_expression(stmt.rvalue, hoist)
            else:
                stmt.rvalue.args = [map_expression(a, hoist) for a in stmt.rvalue.args]
        elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
            if not isinstance(stmt.init, ast.Call):
                stmt.init = map_expression(stmt.init, hoist)
            else:
                stmt.init.args = [map_expression(a, hoist) for a in stmt.init.args]
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call):
                stmt.expr.args = [map_expression(a, hoist) for a in stmt.expr.args]
            else:
                stmt.expr = map_expression(stmt.expr, hoist)
        elif isinstance(stmt, ast.If):
            stmt.cond = map_expression(stmt.cond, hoist)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            stmt.value = map_expression(stmt.value, hoist)
        if not prefix:
            return stmt
        return prefix + [stmt]

    transform_block(func.body, rewrite)
    return hoisted


# ---------------------------------------------------------------------------
# Inlining proper
# ---------------------------------------------------------------------------


def _has_loops(func: ast.FunctionDef) -> bool:
    return any(isinstance(s, (ast.While, ast.DoWhile, ast.For))
               for s in walk_statements(func.body))


def _return_statements(func: ast.FunctionDef) -> list[ast.Return]:
    return [s for s in walk_statements(func.body) if isinstance(s, ast.Return)]


def _single_trailing_return(func: ast.FunctionDef) -> bool:
    returns = _return_statements(func)
    if not returns:
        return True
    if len(returns) != 1:
        return False
    return bool(func.body.stmts) and func.body.stmts[-1] is returns[0]


def _inlinable_shape(func: ast.FunctionDef) -> bool:
    """Whether the callee's control flow can be spliced without a goto."""
    if _single_trailing_return(func):
        return True
    return not _has_loops(func)


class Inliner:
    """Inlines eligible calls across the whole program."""

    def __init__(self, program: Program, config: Optional[InlineConfig] = None):
        self.program = program
        self.config = config or InlineConfig()
        self.report = InlineReport()
        self.graph = build_call_graph(program)
        self.recursive = self.graph.recursive_functions()
        self.roots = set(program.root_functions())
        self.call_site_counts = self._count_call_sites()

    def _count_call_sites(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for callees in self.graph.callees.values():
            for callee in callees:
                counts[callee] = counts.get(callee, 0) + 1
        return counts

    def _should_inline(self, callee: ast.FunctionDef) -> bool:
        if callee.name in NEVER_INLINE or callee.name in self.recursive:
            return False
        if callee.name in self.roots or callee.is_interrupt_handler:
            return False
        if not _inlinable_shape(callee):
            return False
        if callee.always_inline:
            return True
        size = count_statements(callee.body)
        if size <= self.config.size_limit:
            return True
        if self.config.inline_single_call_site and \
                self.call_site_counts.get(callee.name, 0) == 1:
            return True
        return False

    def run(self) -> InlineReport:
        self.report.calls_hoisted = normalize_calls(self.program)
        # Seeded after normalization so the floor covers its __call temps.
        self._temp_counter = _temp_markers(self.program)
        order = self.graph.bottom_up_order()
        # Process callers bottom-up so that inlined code is itself fully
        # inlined already (one pass gives transitive inlining).
        for name in order:
            func = self.program.lookup_function(name)
            if func is None:
                continue
            self._inline_into(func)
        self._drop_fully_inlined()
        check_program(self.program)
        return self.report

    # -- per-caller ------------------------------------------------------------

    def _inline_into(self, caller: ast.FunctionDef) -> None:
        budget = self.config.caller_limit - count_statements(caller.body)

        def rewrite(stmt: ast.Stmt):
            nonlocal budget
            call, target = self._statement_call(stmt)
            if call is None:
                return stmt
            callee = self.program.lookup_function(call.callee)
            if callee is None or callee is caller or not self._should_inline(callee):
                return stmt
            callee_size = count_statements(callee.body)
            if callee_size > budget:
                return stmt
            budget -= callee_size
            self.report.calls_inlined += 1
            self.report.callers_touched.add(caller.name)
            return self._expand(caller, stmt, call, target, callee)

        transform_block(caller.body, rewrite)

    @staticmethod
    def _statement_call(stmt: ast.Stmt) -> tuple[Optional[ast.Call], Optional[ast.Expr]]:
        """Return (call, result lvalue) if the statement is a plain call."""
        if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Call):
            return stmt.expr, None
        if isinstance(stmt, ast.Assign) and isinstance(stmt.rvalue, ast.Call):
            return stmt.rvalue, stmt.lvalue
        if isinstance(stmt, ast.VarDecl) and isinstance(stmt.init, ast.Call):
            return stmt.init, ast.Identifier(stmt.name)
        return None, None

    def _expand(self, caller: ast.FunctionDef, stmt: ast.Stmt, call: ast.Call,
                target: Optional[ast.Expr],
                callee: ast.FunctionDef) -> list[ast.Stmt]:
        marker = next(self._temp_counter)
        rename = {}
        for param in callee.params:
            rename[param.name] = f"__inl{marker}_{param.name}"
        for name in local_types(callee):
            if name not in rename:
                rename[name] = f"__inl{marker}_{name}"

        result: list[ast.Stmt] = []
        # If the original statement declared the result variable, keep the
        # declaration (without initializer) so later uses still see it.
        if isinstance(stmt, ast.VarDecl):
            decl = ast.VarDecl(stmt.name, stmt.ctype, None, stmt.qualifiers)
            decl.loc = stmt.loc
            result.append(decl)

        # Bind arguments to fresh parameter copies.
        for param, arg in zip(callee.params, call.args):
            decl = ast.VarDecl(rename[param.name], param.ctype, arg)
            decl.loc = stmt.loc
            result.append(decl)

        body = clone_block(callee.body)
        self._rename_block(body, rename)

        returns = [s for s in walk_statements(body) if isinstance(s, ast.Return)]
        needs_loop = not (len(returns) == 0 or
                          (len(returns) == 1 and body.stmts and
                           body.stmts[-1] is returns[-1]))

        def convert_return(ret: ast.Return) -> list[ast.Stmt]:
            converted: list[ast.Stmt] = []
            if target is not None and ret.value is not None:
                assign = ast.Assign(_clone(target), ret.value)
                assign.loc = ret.loc
                converted.append(assign)
            elif ret.value is not None and _contains_call(ret.value):
                keep = ast.ExprStmt(ret.value)
                keep.loc = ret.loc
                converted.append(keep)
            if needs_loop:
                brk = ast.Break()
                brk.loc = ret.loc
                converted.append(brk)
            return converted

        def rewrite_returns(inner: ast.Stmt):
            if isinstance(inner, ast.Return):
                return convert_return(inner)
            return inner

        transform_block(body, rewrite_returns)

        if needs_loop:
            one = ast.IntLiteral(1)
            loop_body = ast.Block(list(body.stmts) + [ast.Break()])
            loop = ast.While(one, loop_body)
            loop.loc = stmt.loc
            result.append(loop)
        else:
            result.extend(body.stmts)
        return result

    def _rename_block(self, block: ast.Block, rename: dict[str, str]) -> None:
        def fix_expr(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.Identifier) and expr.name in rename:
                expr.name = rename[expr.name]
            return expr

        for inner in walk_statements(block):
            if isinstance(inner, ast.VarDecl) and inner.name in rename:
                inner.name = rename[inner.name]
            from repro.cminor.visitor import replace_statement_expressions

            replace_statement_expressions(inner, fix_expr)

    def _drop_fully_inlined(self) -> None:
        """Remove callees that no longer have any callers and are not roots."""
        graph = build_call_graph(self.program)
        called: set[str] = set()
        for callees in graph.callees.values():
            called |= callees
        for func in list(self.program.iter_functions()):
            if func.name in self.roots or func.is_interrupt_handler:
                continue
            if func.name not in called:
                self.program.remove_function(func.name)
                self.report.functions_removed += 1


def _clone(expr: ast.Expr) -> ast.Expr:
    from repro.cminor.visitor import clone_expression

    return clone_expression(expr)


def inline_program(program: Program,
                   config: Optional[InlineConfig] = None) -> InlineReport:
    """Run the inliner over the whole program."""
    report = Inliner(program, config).run()
    program.invalidate_analysis()
    return report
