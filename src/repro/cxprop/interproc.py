"""Whole-program facts used by the flow-sensitive analysis.

cXprop is a whole-program analyzer but (without the inliner) a context-
insensitive one.  The facts it maintains across function boundaries are:

* **global invariants** — for every global variable, the join of its static
  initializer and every value ever stored to it; sound because the analysis
  also havocs globals at calls and treats address-taken globals as unknown;
* **mod-sets** — the set of globals each function may (transitively) write,
  used to havoc state at call sites;
* **address-taken sets** — globals and locals whose address escapes, which
  may change behind the analysis's back through pointer stores;
* **interrupt-shared variables** — globals touched from interrupt context;
  the flow-sensitive engine only trusts refined values for these inside
  atomic sections (the concurrency-soundness improvement of Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.callgraph import CallGraph, build_call_graph
from repro.cminor.program import Program
from repro.cminor.visitor import (
    walk_expression,
    walk_statements,
)
from repro.cxprop.evaluate import Evaluator
from repro.cxprop.values import MemoryTarget, Value
from repro.nesc.concurrency import analyze_concurrency

#: Marker inside a mod-set meaning "may write through a pointer".
POINTER_STORE = "*"

#: Iterations of the global-invariant fixpoint before widening.
_INVARIANT_ROUNDS = 6


@dataclass
class WholeProgramFacts:
    """Interprocedural facts shared by every per-function analysis."""

    program: Program
    call_graph: CallGraph
    global_invariants: dict[str, Value] = field(default_factory=dict)
    mod_sets: dict[str, set[str]] = field(default_factory=dict)
    address_taken_globals: set[str] = field(default_factory=set)
    address_taken_locals: dict[str, set[str]] = field(default_factory=dict)
    shared_variables: set[str] = field(default_factory=set)

    def invariant(self, name: str) -> Value:
        value = self.global_invariants.get(name)
        if value is not None:
            return value
        var = self.program.lookup_global(name)
        return Value.of_type(var.ctype if var is not None else None)

    def modified_globals(self, callee: str) -> set[str]:
        mods = self.mod_sets.get(callee, set())
        if POINTER_STORE in mods:
            return (mods - {POINTER_STORE}) | self.address_taken_globals
        return mods


def _lvalue_root(lvalue: ast.Expr) -> Optional[str]:
    """The named root of an lvalue, or None for stores through pointers."""
    if isinstance(lvalue, ast.Identifier):
        return lvalue.name
    if isinstance(lvalue, ast.Index):
        return _lvalue_root(lvalue.base)
    if isinstance(lvalue, ast.Member):
        if lvalue.arrow:
            return None
        return _lvalue_root(lvalue.base)
    return None


def _collect_address_taken(program: Program) -> tuple[set[str], dict[str, set[str]]]:
    """Globals and per-function locals whose address escapes."""
    globals_taken: set[str] = set()
    locals_taken: dict[str, set[str]] = {}
    for var in program.iter_globals():
        if isinstance(var.ctype, ty.ArrayType):
            # Array globals decay to pointers whenever they are mentioned;
            # treat them as address-taken so stores through pointers are
            # handled conservatively.
            globals_taken.add(var.name)
    analysis = program.analysis()
    for func in program.iter_functions():
        locals_ = set(analysis.local_types(func))
        taken: set[str] = set()
        for stmt in walk_statements(func.body):
            for expr in analysis.statement_expressions(stmt, func.name):
                for node in walk_expression(expr):
                    if isinstance(node, ast.AddressOf):
                        root = _lvalue_root(node.lvalue)
                        if root is None:
                            continue
                        if root in locals_:
                            taken.add(root)
                        elif root in program.globals:
                            globals_taken.add(root)
                    elif isinstance(node, ast.Identifier):
                        if node.name in locals_ and \
                                isinstance(node.ctype, ty.ArrayType):
                            taken.add(node.name)
        locals_taken[func.name] = taken
    return globals_taken, locals_taken


def _collect_mod_sets(program: Program, graph: CallGraph) -> dict[str, set[str]]:
    """Globals each function may write, transitively."""
    direct: dict[str, set[str]] = {}
    global_names = set(program.globals)
    analysis = program.analysis()
    for func in program.iter_functions():
        locals_ = set(analysis.local_types(func))
        mods: set[str] = set()
        for stmt in walk_statements(func.body):
            if isinstance(stmt, ast.Assign):
                root = _lvalue_root(stmt.lvalue)
                if root is None:
                    mods.add(POINTER_STORE)
                elif root in global_names and root not in locals_:
                    mods.add(root)
        direct[func.name] = mods

    # Transitive closure over the (acyclic-ish) call graph.
    changed = True
    result = {name: set(mods) for name, mods in direct.items()}
    while changed:
        changed = False
        for name in result:
            for callee in graph.calls(name):
                callee_mods = result.get(callee)
                if not callee_mods:
                    continue
                before = len(result[name])
                result[name] |= callee_mods
                if len(result[name]) != before:
                    changed = True
    return result


class _InvariantContext:
    """Evaluation context used while computing global invariants."""

    def __init__(self, facts: WholeProgramFacts, func: ast.FunctionDef,
                 locals_: dict[str, ty.CType]):
        self.facts = facts
        self.func = func
        self.locals_ = locals_

    def lookup(self, name: str) -> Value:
        if name in self.locals_:
            return Value.of_type(self.locals_[name])
        return self.facts.invariant(name)

    def call_result(self, call: ast.Call) -> Value:
        func = self.facts.program.lookup_function(call.callee)
        if func is None:
            return Value.top()
        return Value.of_type(func.return_type)

    def local_target(self, name: str) -> Optional[MemoryTarget]:
        if name in self.locals_:
            size = self.locals_[name].sizeof(2)
            return MemoryTarget("local", f"{self.func.name}:{name}", size)
        return None


def _initial_invariant(var: ast.GlobalVar, evaluator: Evaluator,
                       facts: WholeProgramFacts) -> Value:
    """Invariant seed: the static initializer (globals are zero-initialized)."""
    if isinstance(var.ctype, (ty.ArrayType, ty.StructType)):
        # Aggregate contents are not tracked.
        return Value.top()
    if var.init is None:
        if var.ctype.is_pointer():
            return Value.null_pointer()
        return Value.of_int(0).clamp_to_type(var.ctype)
    if isinstance(var.init, ast.IntLiteral):
        value = Value.of_int(var.init.value)
        return value.clamp_to_type(var.ctype) if var.ctype.is_integer() else value
    if isinstance(var.init, ast.StringLiteral) and var.ctype.is_pointer():
        from repro.cxprop.evaluate import string_target

        return Value.pointer_to(string_target(var.init))
    if isinstance(var.init, ast.AddressOf):
        ctx = _InvariantContext(facts, ast.FunctionDef("<init>", ty.VOID), {})
        return evaluator.eval_address(var.init.lvalue, ctx)
    return Value.of_type(var.ctype)


def _compute_global_invariants(facts: WholeProgramFacts,
                               evaluator: Evaluator) -> None:
    program = facts.program
    trackable = {
        var.name: var for var in program.iter_globals()
        if var.ctype.is_scalar()
    }
    for name, var in trackable.items():
        if name in facts.address_taken_globals or var.is_volatile:
            facts.global_invariants[name] = Value.of_type(var.ctype)
        else:
            facts.global_invariants[name] = _initial_invariant(var, evaluator, facts)

    assignments: list[tuple[ast.FunctionDef, ast.Assign]] = []
    for func in program.iter_functions():
        for stmt in walk_statements(func.body):
            if isinstance(stmt, ast.Assign):
                root = _lvalue_root(stmt.lvalue)
                if root in trackable and isinstance(stmt.lvalue, ast.Identifier):
                    assignments.append((func, stmt))

    analysis = program.analysis()
    local_maps = {func.name: analysis.local_types(func)
                  for func in program.iter_functions()}

    for round_number in range(_INVARIANT_ROUNDS):
        changed = False
        for func, stmt in assignments:
            name = stmt.lvalue.name  # type: ignore[union-attr]
            locals_ = local_maps[func.name]
            if name in locals_:
                continue
            if name in facts.address_taken_globals:
                continue
            ctx = _InvariantContext(facts, func, locals_)
            new_value = evaluator.eval(stmt.rvalue, ctx)
            var = trackable[name]
            if var.ctype.is_integer():
                new_value = new_value.clamp_to_type(var.ctype)
            current = facts.global_invariants[name]
            joined = current.join(new_value)
            if round_number >= _INVARIANT_ROUNDS - 2 and joined != current:
                joined = joined.widen_to_type(var.ctype)
            if joined != current:
                facts.global_invariants[name] = joined
                changed = True
        if not changed:
            break


def compute_whole_program_facts(program: Program,
                                pointer_size: int = 2) -> WholeProgramFacts:
    """Compute all interprocedural facts for ``program``."""
    graph = build_call_graph(program)
    facts = WholeProgramFacts(program=program, call_graph=graph)

    globals_taken, locals_taken = _collect_address_taken(program)
    facts.address_taken_globals = globals_taken
    facts.address_taken_locals = locals_taken
    facts.mod_sets = _collect_mod_sets(program, graph)

    concurrency = analyze_concurrency(program, suppress_norace=True)
    shared: set[str] = set()
    for access in concurrency.accesses:
        if access.function in concurrency.async_functions:
            shared.add(access.variable)
    facts.shared_variables = shared

    evaluator = Evaluator(program, pointer_size)
    _compute_global_invariants(facts, evaluator)
    return facts
