"""cXprop's conservative, pointer-aware race-condition detector.

Section 2.1 of the paper: instead of reusing nesC's concurrency analysis
(which does not follow pointers), the toolchain uses its own detector that
is conservative in the presence of pointers and slightly more precise about
atomic contexts.  Its results feed two consumers:

* the dataflow engine, which must not trust flow-sensitive facts about a
  variable that an interrupt handler may change behind its back, and
* the atomic-section optimizer, which needs to know which functions always
  execute with interrupts disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminor import ast_nodes as ast
from repro.cminor.callgraph import build_call_graph
from repro.cminor.program import Program
from repro.cminor.visitor import statement_expressions, walk_expression, walk_statements
from repro.nesc.concurrency import analyze_concurrency


@dataclass
class RaceReport:
    """Results of the pointer-aware race analysis.

    Attributes:
        async_functions: Functions reachable from interrupt handlers.
        shared_variables: Globals an interrupt context may read or write —
            directly, or indirectly through pointers.
        racy_variables: Shared variables with at least one unprotected access.
        pointer_shared: The subset of ``shared_variables`` that is shared
            only because its address escapes into code reachable from an
            interrupt handler (the pointer-following improvement over nesC).
    """

    async_functions: set[str] = field(default_factory=set)
    shared_variables: set[str] = field(default_factory=set)
    racy_variables: set[str] = field(default_factory=set)
    pointer_shared: set[str] = field(default_factory=set)


def _async_pointer_stores(program: Program, async_functions: set[str]) -> bool:
    """Whether any interrupt-reachable function stores through a pointer."""
    for func in program.iter_functions():
        if func.name not in async_functions:
            continue
        for stmt in walk_statements(func.body):
            if isinstance(stmt, ast.Assign):
                lvalue = stmt.lvalue
                while isinstance(lvalue, (ast.Index,)):
                    base_type = lvalue.base.ctype
                    if base_type is not None and base_type.is_pointer():
                        return True
                    lvalue = lvalue.base
                if isinstance(lvalue, ast.Deref):
                    return True
                if isinstance(lvalue, ast.Member) and lvalue.arrow:
                    return True
    return False


def _address_taken_globals(program: Program) -> set[str]:
    taken: set[str] = set()
    for func in program.iter_functions():
        for stmt in walk_statements(func.body):
            for expr in statement_expressions(stmt):
                for node in walk_expression(expr):
                    if isinstance(node, ast.AddressOf):
                        root = node.lvalue
                        while isinstance(root, (ast.Index, ast.Member)):
                            if isinstance(root, ast.Member) and root.arrow:
                                root = None
                                break
                            root = root.base
                        if isinstance(root, ast.Identifier) and \
                                root.name in program.globals:
                            taken.add(root.name)
                    elif isinstance(node, ast.Identifier):
                        if node.name in program.globals:
                            var = program.lookup_global(node.name)
                            if var is not None and var.ctype.is_array():
                                taken.add(node.name)
    return taken


def pointer_aware_race_analysis(program: Program) -> RaceReport:
    """Run the conservative, pointer-following race analysis."""
    report = RaceReport()
    graph = build_call_graph(program)
    concurrency = analyze_concurrency(program, suppress_norace=True)
    report.async_functions = set(concurrency.async_functions)

    # Directly shared: variables with at least one access from async context.
    directly_shared: set[str] = set()
    for access in concurrency.accesses:
        if access.function in report.async_functions:
            directly_shared.add(access.variable)

    # Pointer-shared: if interrupt-reachable code stores through any pointer,
    # every address-taken global may be modified from interrupt context.
    pointer_shared: set[str] = set()
    if _async_pointer_stores(program, report.async_functions):
        pointer_shared = _address_taken_globals(program)

    report.pointer_shared = pointer_shared - directly_shared
    report.shared_variables = directly_shared | pointer_shared

    # Racy: shared and touched outside an atomic section somewhere.
    unprotected: set[str] = set()
    for access in concurrency.accesses:
        if not access.in_atomic:
            unprotected.add(access.variable)
    report.racy_variables = report.shared_variables & unprotected
    del graph
    return report
