"""The flow-sensitive abstract interpreter over one function.

The engine walks a function's (simplified, structured) body, tracking an
abstract state — a mapping from variable names to
:class:`~repro.cxprop.values.Value` — and records a joined snapshot of the
state in front of every statement.  The transformation passes (branch
folding, check elimination, constant substitution) consult those snapshots.

Concurrency soundness: variables that interrupt handlers touch are only
trusted *inside* atomic sections (and inside interrupt handlers, which run
with interrupts disabled); everywhere else a read of such a variable yields
its whole-program invariant.  This is the practical version of the paper's
"sound analysis of concurrent code".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.visitor import walk_expression
from repro.cxprop.domains.base import AbstractDomain
from repro.cxprop.domains.interval import IntervalDomain
from repro.cxprop.evaluate import Evaluator
from repro.cxprop.interproc import WholeProgramFacts, _lvalue_root
from repro.cxprop.values import MemoryTarget, Value

#: Maximum abstract iterations of a loop body before widening kicks in.
_MAX_LOOP_ITERATIONS = 6
#: Iteration at which widening starts.
_WIDEN_AFTER = 3

State = dict[str, Value]


@dataclass
class Flow:
    """Outcome of abstractly executing a statement or block."""

    fall: Optional[State]
    breaks: list[State] = field(default_factory=list)
    continues: list[State] = field(default_factory=list)
    returns: list[State] = field(default_factory=list)

    @staticmethod
    def falling(state: Optional[State]) -> "Flow":
        return Flow(fall=state)


def join_states(domain: AbstractDomain, left: Optional[State],
                right: Optional[State]) -> Optional[State]:
    """Join two states (None means unreachable).

    Copy-on-write with identity fast paths: interned values make
    ``lval is rval`` true for every variable that both branches agree on,
    so the (allocation-heavy) ``domain.join`` only runs for entries that
    actually differ.
    """
    if left is None:
        return dict(right) if right is not None else None
    if right is None:
        return dict(left)
    if left is right:
        return dict(left)
    joined: State = {}
    if len(left) == len(right):
        # Common case in the widening loop: same key set on both sides.
        get_right = right.get
        same_keys = True
        for name, lval in left.items():
            rval = get_right(name)
            if rval is None:
                same_keys = False
                break
            joined[name] = lval if lval is rval else domain.join(lval, rval)
        if same_keys:
            return joined
        joined.clear()
    for name in set(left) | set(right):
        lval = left.get(name)
        rval = right.get(name)
        if lval is None or rval is None:
            # Missing entries fall back to the lazy lookup default; dropping
            # the entry keeps the join conservative.
            continue
        if lval is rval:
            joined[name] = lval
        else:
            joined[name] = domain.join(lval, rval)
    return joined


class _FlowContext:
    """Evaluation context bound to a specific state and atomicity flag."""

    def __init__(self, analysis: "FunctionAnalysis", state: State, in_atomic: bool):
        self.analysis = analysis
        self.state = state
        self.in_atomic = in_atomic

    def lookup(self, name: str) -> Value:
        return self.analysis.lookup(self.state, name, self.in_atomic)

    def call_result(self, call: ast.Call) -> Value:
        func = self.analysis.program.lookup_function(call.callee)
        if func is None:
            return Value.top()
        return Value.of_type(func.return_type)

    def local_target(self, name: str) -> Optional[MemoryTarget]:
        ctype = self.analysis.locals_.get(name)
        if ctype is None:
            return None
        return MemoryTarget("local", f"{self.analysis.func.name}:{name}",
                            ctype.sizeof(2))


@dataclass
class AnalysisResult:
    """Per-statement snapshots produced by one function analysis."""

    states_before: dict[int, State] = field(default_factory=dict)
    atomic_at: dict[int, bool] = field(default_factory=dict)

    def state_before(self, stmt: ast.Stmt) -> Optional[State]:
        return self.states_before.get(stmt.node_id)

    def in_atomic(self, stmt: ast.Stmt) -> bool:
        return self.atomic_at.get(stmt.node_id, False)


class FunctionAnalysis:
    """Analyzes one function and records per-statement states."""

    def __init__(self, program: Program, func: ast.FunctionDef,
                 facts: WholeProgramFacts,
                 domain: Optional[AbstractDomain] = None,
                 pointer_size: int = 2):
        self.program = program
        self.func = func
        self.facts = facts
        self.domain = domain or IntervalDomain()
        self.evaluator = Evaluator(program, pointer_size)
        self._analysis = program.analysis()
        self.locals_ = self._analysis.local_types(func)
        self.address_taken = facts.address_taken_locals.get(func.name, set())
        self.result = AnalysisResult()

    # -- variable lookup ----------------------------------------------------------

    def lookup(self, state: State, name: str, in_atomic: bool) -> Value:
        if name in self.locals_:
            if name in self.address_taken:
                return Value.of_type(self.locals_[name])
            value = state.get(name)
            if value is None:
                return Value.of_type(self.locals_[name])
            return value
        if name in self.program.globals:
            if name in self.facts.shared_variables and not in_atomic:
                return self.facts.invariant(name)
            var = self.program.lookup_global(name)
            if var is not None and var.is_volatile:
                return Value.of_type(var.ctype)
            value = state.get(name)
            if value is None:
                return self.facts.invariant(name)
            return value
        return Value.top()

    # -- driving --------------------------------------------------------------------

    def run(self) -> AnalysisResult:
        initial: State = {}
        in_atomic = self.func.is_interrupt_handler
        flow = self._exec_block(self.func.body, initial, in_atomic)
        del flow
        return self.result

    # -- statement execution ----------------------------------------------------------

    def _record(self, stmt: ast.Stmt, state: State, in_atomic: bool) -> None:
        snapshot = self._sanitize(state, in_atomic)
        existing = self.result.states_before.get(stmt.node_id)
        if existing is None:
            self.result.states_before[stmt.node_id] = snapshot
        else:
            joined = join_states(self.domain, existing, snapshot)
            self.result.states_before[stmt.node_id] = joined or {}
        self.result.atomic_at[stmt.node_id] = in_atomic and \
            self.result.atomic_at.get(stmt.node_id, True)

    def _sanitize(self, state: State, in_atomic: bool) -> State:
        """Degrade shared variables to their invariant outside atomic sections."""
        snapshot = dict(state)
        if not in_atomic:
            for name in list(snapshot):
                if name in self.facts.shared_variables:
                    snapshot[name] = self.facts.invariant(name)
        return snapshot

    def _exec_block(self, block: ast.Block, state: Optional[State],
                    in_atomic: bool) -> Flow:
        current = state
        flow = Flow(fall=None)
        for stmt in block.stmts:
            if current is None:
                break
            step = self._exec_stmt(stmt, current, in_atomic)
            flow.breaks.extend(step.breaks)
            flow.continues.extend(step.continues)
            flow.returns.extend(step.returns)
            current = step.fall
        flow.fall = current
        return flow

    def _exec_stmt(self, stmt: ast.Stmt, state: State, in_atomic: bool) -> Flow:
        self._record(stmt, state, in_atomic)
        if isinstance(stmt, ast.Block):
            return self._exec_block(stmt, state, in_atomic)
        if isinstance(stmt, ast.Atomic):
            entry = dict(state)
            if not in_atomic:
                # Entering an atomic section from interruptible code: any
                # knowledge about interrupt-shared variables is stale.  A
                # nested atomic section (interrupts already off) keeps it.
                for name in self.facts.shared_variables:
                    entry.pop(name, None)
            return self._exec_block(stmt.body, entry, True)
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, state, in_atomic)
        if isinstance(stmt, ast.While):
            return self._exec_loop(stmt, state, in_atomic)
        if isinstance(stmt, (ast.DoWhile, ast.For)):
            # The simplifier removes these; treat conservatively if present.
            havoced = self._havoc_all(state)
            body_flow = self._exec_block(stmt.body, havoced, in_atomic)
            exit_state = havoced
            for extra in body_flow.breaks + ([body_flow.fall]
                                             if body_flow.fall else []):
                exit_state = join_states(self.domain, exit_state, extra) or {}
            return Flow(fall=exit_state, returns=body_flow.returns)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, state, in_atomic)
            return Flow(fall=None, returns=[dict(state)])
        if isinstance(stmt, ast.Break):
            return Flow(fall=None, breaks=[dict(state)])
        if isinstance(stmt, ast.Continue):
            return Flow(fall=None, continues=[dict(state)])
        if isinstance(stmt, (ast.Nop, ast.Post)):
            return Flow.falling(state)
        new_state = dict(state)
        if isinstance(stmt, ast.VarDecl):
            self._transfer_vardecl(stmt, new_state, in_atomic)
        elif isinstance(stmt, ast.Assign):
            self._transfer_assign(stmt, new_state, in_atomic)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, new_state, in_atomic)
            self._havoc_for_calls(stmt, new_state)
        return Flow.falling(new_state)

    # -- control flow -------------------------------------------------------------------

    def _exec_if(self, stmt: ast.If, state: State, in_atomic: bool) -> Flow:
        cond_value = self._eval(stmt.cond, state, in_atomic)
        self._havoc_for_calls(stmt, state)
        from repro.cxprop.values import truth_of

        truth = truth_of(cond_value)
        flows: list[Flow] = []
        if truth is not False:
            then_state = self._refine(dict(state), stmt.cond, True, in_atomic)
            flows.append(self._exec_block(stmt.then_body, then_state, in_atomic))
        if truth is not True:
            else_state = self._refine(dict(state), stmt.cond, False, in_atomic)
            if stmt.else_body is not None:
                flows.append(self._exec_block(stmt.else_body, else_state, in_atomic))
            else:
                flows.append(Flow.falling(else_state))
        merged = Flow(fall=None)
        fall: Optional[State] = None
        for flow in flows:
            fall = join_states(self.domain, fall, flow.fall)
            merged.breaks.extend(flow.breaks)
            merged.continues.extend(flow.continues)
            merged.returns.extend(flow.returns)
        merged.fall = fall
        return merged

    def _exec_loop(self, stmt: ast.While, state: State, in_atomic: bool) -> Flow:
        head: Optional[State] = dict(state)
        previous_head: Optional[State] = None
        merged = Flow(fall=None)
        exit_states: list[State] = []
        returns: list[State] = []
        cond_always_true = isinstance(stmt.cond, ast.IntLiteral) and stmt.cond.value != 0

        for iteration in range(_MAX_LOOP_ITERATIONS):
            assert head is not None
            cond_value = self._eval(stmt.cond, head, in_atomic)
            from repro.cxprop.values import truth_of

            truth = truth_of(cond_value)
            if truth is False:
                break
            body_state = self._refine(dict(head), stmt.cond, True, in_atomic) \
                if not cond_always_true else dict(head)
            flow = self._exec_block(stmt.body, body_state, in_atomic)
            returns.extend(flow.returns)
            exit_states.extend(flow.breaks)
            next_head: Optional[State] = None
            for candidate in flow.continues + ([flow.fall] if flow.fall is not None else []):
                next_head = join_states(self.domain, next_head, candidate)
            if next_head is None:
                # The body always breaks or returns: no further iterations.
                head = None
                break
            joined = join_states(self.domain, head, next_head) or {}
            if iteration >= _WIDEN_AFTER:
                joined = self._widen(head, joined)
            if joined == head:
                head = joined
                break
            previous_head = head
            head = joined
        del previous_head

        exit_state: Optional[State] = None
        for candidate in exit_states:
            exit_state = join_states(self.domain, exit_state, candidate)
        if not cond_always_true and head is not None:
            false_state = self._refine(dict(head), stmt.cond, False, in_atomic)
            exit_state = join_states(self.domain, exit_state, false_state)
        merged.returns = returns
        merged.fall = exit_state
        return merged

    def _widen(self, old: State, new: State) -> State:
        widened: State = {}
        for name, value in new.items():
            previous = old.get(name)
            ctype = self.locals_.get(name)
            if ctype is None:
                var = self.program.lookup_global(name)
                ctype = var.ctype if var is not None else None
            if previous is None or previous != value:
                widened[name] = self.domain.widen(previous or value, value, ctype)
            else:
                widened[name] = value
        return widened

    # -- refinement ----------------------------------------------------------------------

    def _refine(self, state: State, cond: ast.Expr, branch: bool,
                in_atomic: bool) -> State:
        """Narrow variable ranges using the branch condition."""
        if isinstance(cond, ast.UnaryOp) and cond.op == "!":
            return self._refine(state, cond.operand, not branch, in_atomic)
        if isinstance(cond, ast.BinaryOp) and cond.op == "&&" and branch:
            state = self._refine(state, cond.left, True, in_atomic)
            return self._refine(state, cond.right, True, in_atomic)
        if isinstance(cond, ast.BinaryOp) and cond.op == "||" and not branch:
            state = self._refine(state, cond.left, False, in_atomic)
            return self._refine(state, cond.right, False, in_atomic)
        if isinstance(cond, ast.Identifier):
            return self._refine_compare(state, cond, "!=" if branch else "==",
                                        Value.of_int(0), in_atomic)
        if isinstance(cond, ast.BinaryOp) and cond.op in ("<", "<=", ">", ">=",
                                                          "==", "!="):
            op = cond.op if branch else _negate_comparison(cond.op)
            left, right = cond.left, cond.right
            if isinstance(left, ast.Identifier):
                bound = self._eval(right, state, in_atomic)
                return self._refine_compare(state, left, op, bound, in_atomic)
            if isinstance(right, ast.Identifier):
                bound = self._eval(left, state, in_atomic)
                return self._refine_compare(state, right, _swap_comparison(op),
                                            bound, in_atomic)
        return state

    def _refine_compare(self, state: State, var: ast.Identifier, op: str,
                        bound: Value, in_atomic: bool) -> State:
        if not self._refinable(var.name, in_atomic):
            return state
        current = self.lookup(state, var.name, in_atomic)
        if not current.is_int or not bound.is_int:
            return state
        lo, hi = current.lo, current.hi
        if op == "<":
            hi = min(hi, bound.hi - 1)
        elif op == "<=":
            hi = min(hi, bound.hi)
        elif op == ">":
            lo = max(lo, bound.lo + 1)
        elif op == ">=":
            lo = max(lo, bound.lo)
        elif op == "==":
            lo, hi = max(lo, bound.lo), min(hi, bound.hi)
        elif op == "!=":
            constant = bound.as_constant()
            if constant is not None:
                if lo == constant:
                    lo = lo + 1
                if hi == constant:
                    hi = hi - 1
        if lo > hi:
            # Contradiction: the branch is unreachable; keep the old value so
            # downstream folding stays conservative.
            return state
        state[var.name] = Value.of_range(lo, hi)
        return state

    def _refinable(self, name: str, in_atomic: bool) -> bool:
        if name in self.locals_:
            return name not in self.address_taken
        if name in self.program.globals:
            if name in self.facts.shared_variables and not in_atomic:
                return False
            var = self.program.lookup_global(name)
            if var is not None and var.is_volatile:
                return False
            return name not in self.facts.address_taken_globals
        return False

    # -- transfer functions ----------------------------------------------------------------

    def _eval(self, expr: ast.Expr, state: State, in_atomic: bool) -> Value:
        ctx = _FlowContext(self, state, in_atomic)
        return self.evaluator.eval(expr, ctx)

    def _transfer_vardecl(self, stmt: ast.VarDecl, state: State,
                          in_atomic: bool) -> None:
        if stmt.init is None:
            return
        value = self._eval(stmt.init, state, in_atomic)
        self._havoc_for_calls(stmt, state)
        if stmt.name not in self.address_taken:
            if stmt.ctype.is_integer():
                value = value.clamp_to_type(stmt.ctype)
            state[stmt.name] = value

    def _transfer_assign(self, stmt: ast.Assign, state: State,
                         in_atomic: bool) -> None:
        value = self._eval(stmt.rvalue, state, in_atomic)
        self._eval(stmt.lvalue, state, in_atomic)
        self._havoc_for_calls(stmt, state)
        lvalue = stmt.lvalue
        if isinstance(lvalue, ast.Identifier):
            name = lvalue.name
            declared = self.locals_.get(name)
            if declared is None:
                var = self.program.lookup_global(name)
                declared = var.ctype if var is not None else None
            if declared is not None and declared.is_integer() and value.is_int:
                value = value.clamp_to_type(declared)
            if name in self.locals_:
                if name not in self.address_taken:
                    state[name] = value
                return
            if name in self.program.globals:
                state[name] = value
                return
            return
        root = _lvalue_root(lvalue)
        if root is None:
            # Store through a pointer: anything address-taken may change.
            for name in list(state):
                if name in self.facts.address_taken_globals or \
                        name in self.address_taken:
                    state.pop(name, None)

    def _havoc_for_calls(self, stmt: ast.Stmt, state: State) -> None:
        """Invalidate state that a called function may modify."""
        for expr in self._analysis.statement_expressions(stmt,
                                                         self.func.name):
            for node in walk_expression(expr):
                if isinstance(node, ast.Call) and \
                        node.callee in self.program.functions:
                    for name in self.facts.modified_globals(node.callee):
                        state.pop(name, None)

    def _havoc_all(self, state: State) -> State:
        return {}


def _negate_comparison(op: str) -> str:
    return {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}[op]


def _swap_comparison(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}[op]


def analyze_function(program: Program, func: ast.FunctionDef,
                     facts: WholeProgramFacts,
                     domain: Optional[AbstractDomain] = None) -> AnalysisResult:
    """Run the flow-sensitive analysis over one function."""
    return FunctionAnalysis(program, func, facts, domain).run()
