"""Atomic-section optimization.

Section 2.1 credits the improved concurrency analysis with two effects on
generated code: *nested* atomic sections can be eliminated outright, and
atomic sections that can never execute with interrupts already disabled do
not need to save and restore the interrupt-enable bit.

This pass implements both:

* an atomic statement syntactically nested inside another atomic statement
  is replaced by its body;
* atomic statements inside interrupt handlers — or inside functions that are
  only ever called from atomic context (computed interprocedurally over the
  call graph) — are likewise flattened, since interrupts are already off;
* the remaining atomic statements in functions that can never be reached
  from an atomic context are marked ``save_irq = False`` so the backend can
  emit the cheaper ``cli``/``sei`` pair instead of saving the status
  register.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminor import ast_nodes as ast
from repro.cminor.callgraph import build_call_graph
from repro.cminor.program import Program
from repro.cminor.visitor import (
    statement_expressions,
    walk_expression,
    walk_statements,
)


@dataclass
class AtomicOptReport:
    """Statistics from one atomic-optimization run."""

    nested_removed: int = 0
    irq_saves_avoided: int = 0
    always_atomic_functions: set[str] = field(default_factory=set)


def _call_sites_by_context(program: Program) -> dict[str, list[tuple[str, bool]]]:
    """Map each callee to the (caller, inside_atomic) pairs of its call sites."""
    sites: dict[str, list[tuple[str, bool]]] = {}

    def visit_block(block: ast.Block, caller: str, in_atomic: bool) -> None:
        for stmt in block.stmts:
            nested = in_atomic or isinstance(stmt, ast.Atomic)
            for expr in statement_expressions(stmt):
                for node in walk_expression(expr):
                    if isinstance(node, ast.Call) and node.callee in program.functions:
                        sites.setdefault(node.callee, []).append((caller, in_atomic))
            if isinstance(stmt, ast.Atomic):
                visit_block(stmt.body, caller, True)
            elif isinstance(stmt, ast.If):
                visit_block(stmt.then_body, caller, in_atomic)
                if stmt.else_body is not None:
                    visit_block(stmt.else_body, caller, in_atomic)
            elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
                visit_block(stmt.body, caller, in_atomic)
            elif isinstance(stmt, ast.Block):
                visit_block(stmt, caller, in_atomic)
            del nested

    for func in program.iter_functions():
        visit_block(func.body, func.name, func.is_interrupt_handler)
    return sites


def compute_always_atomic_functions(program: Program) -> set[str]:
    """Functions that can only execute with interrupts disabled.

    A function qualifies if it is an interrupt handler, or if every one of
    its call sites is inside an atomic section or inside another function
    that already qualifies.  Root functions (``main``, tasks) never qualify.
    """
    sites = _call_sites_by_context(program)
    roots = set(program.root_functions())
    handlers = {f.name for f in program.iter_functions() if f.is_interrupt_handler}

    always_atomic = set(handlers)
    changed = True
    while changed:
        changed = False
        for func in program.iter_functions():
            name = func.name
            if name in always_atomic or name in roots:
                continue
            call_sites = sites.get(name)
            if not call_sites:
                continue
            if all(in_atomic or caller in always_atomic
                   for caller, in_atomic in call_sites):
                always_atomic.add(name)
                changed = True
    return always_atomic


def _never_called_from_atomic(program: Program, always_atomic: set[str]) -> set[str]:
    """Functions none of whose call sites are in atomic context."""
    sites = _call_sites_by_context(program)
    result: set[str] = set()
    for func in program.iter_functions():
        if func.is_interrupt_handler or func.name in always_atomic:
            continue
        call_sites = sites.get(func.name, [])
        if all(not in_atomic and caller not in always_atomic
               for caller, in_atomic in call_sites):
            result.add(func.name)
    return result


def optimize_atomic_sections(program: Program) -> AtomicOptReport:
    """Flatten nested atomic sections and avoid needless IRQ-state saves."""
    report = AtomicOptReport()
    always_atomic = compute_always_atomic_functions(program)
    report.always_atomic_functions = always_atomic
    safe_to_skip_save = _never_called_from_atomic(program, always_atomic)

    for func in program.iter_functions():
        interrupts_off = func.is_interrupt_handler or func.name in always_atomic
        _flatten_block(func.body, interrupts_off, report)
        if func.name in safe_to_skip_save:
            for stmt in walk_statements(func.body):
                if isinstance(stmt, ast.Atomic) and stmt.save_irq:
                    stmt.save_irq = False
                    report.irq_saves_avoided += 1
    if report.nested_removed or report.irq_saves_avoided:
        program.invalidate_analysis()
    return report


def _flatten_block(block: ast.Block, interrupts_off: bool,
                   report: AtomicOptReport) -> None:
    new_stmts: list[ast.Stmt] = []
    for stmt in block.stmts:
        if isinstance(stmt, ast.Atomic):
            _flatten_block(stmt.body, True, report)
            if interrupts_off:
                report.nested_removed += 1
                new_stmts.extend(stmt.body.stmts)
                continue
            new_stmts.append(stmt)
            continue
        if isinstance(stmt, ast.If):
            _flatten_block(stmt.then_body, interrupts_off, report)
            if stmt.else_body is not None:
                _flatten_block(stmt.else_body, interrupts_off, report)
        elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            _flatten_block(stmt.body, interrupts_off, report)
        elif isinstance(stmt, ast.Block):
            _flatten_block(stmt, interrupts_off, report)
        new_stmts.append(stmt)
    block.stmts = new_stmts
