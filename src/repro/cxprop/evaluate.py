"""Abstract evaluation of CMinor expressions.

The evaluator turns an expression into a :class:`~repro.cxprop.values.Value`
given a *context* that knows how to look up variables and summarize calls.
It is shared by the flow-sensitive engine (:mod:`repro.cxprop.dataflow`) and
the flow-insensitive global-invariant computation
(:mod:`repro.cxprop.interproc`).

Besides ordinary arithmetic, the evaluator knows the abstract semantics of
the toolchain builtins that matter for optimization:

* ``__bounds_ok(p, n)`` — provably true when every object ``p`` may point
  into is known and the access ``[offset, offset+n)`` fits inside it; this
  is what lets the generic branch-folding pass delete inlined CCured bounds
  checks.
* ``__align_ok`` — always true on the byte-aligned AVR and MSP430 targets.
* ``__hw_read8`` / ``__hw_read16`` — unknown values of the right width.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cxprop import values as av
from repro.cxprop.values import MemoryTarget, Value


class EvalContext(Protocol):
    """What the evaluator needs from its caller."""

    def lookup(self, name: str) -> Value:
        """Abstract value of a variable (local or global)."""
        ...

    def call_result(self, call: ast.Call) -> Value:
        """Abstract return value of a call to a program function."""
        ...

    def local_target(self, name: str) -> Optional[MemoryTarget]:
        """Memory target for a local variable, or None if not a local."""
        ...


def global_target(program: Program, name: str,
                  pointer_size: int = 2) -> Optional[MemoryTarget]:
    """Memory target describing a global variable."""
    var = program.lookup_global(name)
    if var is None:
        return None
    return MemoryTarget("global", name, var.ctype.sizeof(pointer_size))


def string_target(literal: ast.StringLiteral) -> MemoryTarget:
    """Memory target describing a string literal (NUL terminator included)."""
    return MemoryTarget("string", f"str:{literal.value[:16]}", len(literal.value) + 1)


class Evaluator:
    """Evaluates expressions to abstract values within a context."""

    def __init__(self, program: Program, pointer_size: int = 2):
        self.program = program
        self.pointer_size = pointer_size

    # -- public API --------------------------------------------------------------

    def eval(self, expr: ast.Expr, ctx: EvalContext) -> Value:
        value = self._eval(expr, ctx)
        return value.clamp_to_type(expr.ctype) if value.is_int else value

    def eval_condition(self, expr: ast.Expr, ctx: EvalContext) -> Optional[bool]:
        """Definite truth value of a condition, if the analysis can prove it."""
        return av.truth_of(self.eval(expr, ctx))

    # -- dispatch ----------------------------------------------------------------

    def _eval(self, expr: ast.Expr, ctx: EvalContext) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return Value.of_int(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return Value.pointer_to(string_target(expr))
        if isinstance(expr, ast.Identifier):
            ctype = expr.ctype
            if isinstance(ctype, ty.ArrayType):
                # Array names decay to a pointer to the underlying object.
                target = self._object_target(expr.name, ctx)
                if target is not None:
                    return Value.pointer_to(target)
                return Value.any_pointer()
            return ctx.lookup(expr.name)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, ctx)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, ctx)
        if isinstance(expr, ast.Deref):
            self.eval(expr.pointer, ctx)
            return Value.of_type(expr.ctype)
        if isinstance(expr, ast.AddressOf):
            return self.eval_address(expr.lvalue, ctx)
        if isinstance(expr, ast.Index):
            if isinstance(expr.ctype, ty.ArrayType):
                # An array-typed element (e.g. a row of a 2-D buffer) decays
                # to a pointer to its storage.
                return self.eval_address(expr, ctx)
            return Value.of_type(expr.ctype)
        if isinstance(expr, ast.Member):
            if isinstance(expr.ctype, ty.ArrayType):
                # Array-valued fields (msg->data) decay to a pointer into the
                # enclosing object, which the bounds reasoning can track.
                return self.eval_address(expr, ctx)
            return Value.of_type(expr.ctype)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, ctx)
        if isinstance(expr, ast.Cast):
            return self._eval_cast(expr, ctx)
        if isinstance(expr, ast.SizeOf):
            return Value.of_int(expr.of_type.sizeof(self.pointer_size))
        if isinstance(expr, ast.Ternary):
            cond = self.eval(expr.cond, ctx)
            truth = av.truth_of(cond)
            if truth is True:
                return self.eval(expr.then, ctx)
            if truth is False:
                return self.eval(expr.otherwise, ctx)
            return self.eval(expr.then, ctx).join(self.eval(expr.otherwise, ctx))
        return Value.top()

    # -- operators ----------------------------------------------------------------

    def _eval_binary(self, expr: ast.BinaryOp, ctx: EvalContext) -> Value:
        op = expr.op
        left = self.eval(expr.left, ctx)
        if op in ("&&", "||"):
            right = self.eval(expr.right, ctx)
            left_truth = av.truth_of(left)
            right_truth = av.truth_of(right)
            if op == "&&":
                if left_truth is False or right_truth is False:
                    return av.FALSE_VALUE
                if left_truth is True and right_truth is True:
                    return av.TRUE_VALUE
                return av.BOOL_VALUE
            if left_truth is True or right_truth is True:
                return av.TRUE_VALUE
            if left_truth is False and right_truth is False:
                return av.FALSE_VALUE
            return av.BOOL_VALUE
        right = self.eval(expr.right, ctx)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return av.compare_values(op, left, right)
        if op in ("+", "-"):
            pointer_result = self._pointer_arithmetic(expr, left, right)
            if pointer_result is not None:
                return pointer_result
        if op == "+":
            return av.add_values(left, right)
        if op == "-":
            return av.sub_values(left, right)
        if op == "*":
            return av.mul_values(left, right)
        if op == "/":
            return av.div_values(left, right)
        if op == "%":
            return av.mod_values(left, right)
        if op == "<<":
            return av.shift_left_values(left, right)
        if op == ">>":
            return av.shift_right_values(left, right)
        if op == "&":
            return av.bitand_values(left, right)
        if op == "|":
            return av.bitor_values(left, right)
        if op == "^":
            return av.bitxor_values(left, right)
        return Value.top()

    def _pointer_arithmetic(self, expr: ast.BinaryOp, left: Value,
                            right: Value) -> Optional[Value]:
        """Handle ``pointer +/- integer`` with element-size scaling."""
        left_type = expr.left.ctype.decay() if expr.left.ctype else None
        right_type = expr.right.ctype.decay() if expr.right.ctype else None
        if isinstance(left_type, ty.PointerType) and left.is_pointer and right.is_int:
            elem = left_type.target.sizeof(self.pointer_size) or 1
            delta_lo = right.lo * elem
            delta_hi = right.hi * elem
            if expr.op == "-":
                delta_lo, delta_hi = -delta_hi, -delta_lo
            return Value.pointer_to_many(left.targets,
                                         left.offset_lo + delta_lo,
                                         left.offset_hi + delta_hi,
                                         left.may_be_null)
        if isinstance(right_type, ty.PointerType) and right.is_pointer and \
                left.is_int and expr.op == "+":
            elem = right_type.target.sizeof(self.pointer_size) or 1
            return Value.pointer_to_many(right.targets,
                                         right.offset_lo + left.lo * elem,
                                         right.offset_hi + left.hi * elem,
                                         right.may_be_null)
        return None

    def _eval_unary(self, expr: ast.UnaryOp, ctx: EvalContext) -> Value:
        operand = self.eval(expr.operand, ctx)
        if expr.op == "!":
            return av.logical_not(operand)
        if expr.op == "-":
            if operand.is_int:
                return Value.of_range(-operand.hi, -operand.lo)
            return Value.top()
        if expr.op == "~":
            constant = operand.as_constant()
            if constant is not None:
                return Value.of_int(~constant)
            return Value.top()
        return Value.top()

    def _eval_cast(self, expr: ast.Cast, ctx: EvalContext) -> Value:
        operand = self.eval(expr.operand, ctx)
        target = expr.target_type
        if target.is_integer():
            if operand.is_int:
                return operand.clamp_to_type(target)
            return Value.of_type(target)
        if target.is_pointer():
            if operand.is_pointer:
                return operand
            if operand.is_int and operand.as_constant() == 0:
                return Value.null_pointer()
            return Value.any_pointer()
        return Value.top()

    # -- calls -------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, ctx: EvalContext) -> Value:
        name = expr.callee
        if name == "__bounds_ok":
            return self._eval_bounds_ok(expr, ctx)
        if name == "__align_ok":
            # Byte-aligned targets: alignment checks are vacuous (this is
            # precisely the x86 dependence Section 2.3 removes).
            for arg in expr.args:
                self.eval(arg, ctx)
            return av.TRUE_VALUE
        builtin = self.program.lookup_builtin(name)
        if builtin is not None:
            for arg in expr.args:
                self.eval(arg, ctx)
            return Value.of_type(builtin.return_type)
        return ctx.call_result(expr)

    def _eval_bounds_ok(self, expr: ast.Call, ctx: EvalContext) -> Value:
        if len(expr.args) < 2:
            return av.BOOL_VALUE
        pointer = self.eval(expr.args[0], ctx)
        size = self.eval(expr.args[1], ctx)
        if not pointer.is_pointer or not size.is_int:
            return av.BOOL_VALUE
        if pointer.may_be_null or not pointer.targets or \
                pointer.has_unknown_target():
            return av.BOOL_VALUE
        smallest = min(target.size for target in pointer.targets)
        if pointer.offset_lo >= 0 and pointer.offset_hi + size.hi <= smallest:
            return av.TRUE_VALUE
        if pointer.offset_lo >= smallest or pointer.offset_hi + size.lo < 0:
            return av.FALSE_VALUE
        return av.BOOL_VALUE

    # -- addresses ---------------------------------------------------------------

    def eval_address(self, lvalue: ast.Expr, ctx: EvalContext) -> Value:
        """Abstract value of ``&lvalue``."""
        if isinstance(lvalue, ast.Identifier):
            target = self._object_target(lvalue.name, ctx)
            if target is None:
                return Value.any_pointer()
            return Value.pointer_to(target)
        if isinstance(lvalue, ast.Index):
            base_type = lvalue.base.ctype
            if isinstance(base_type, ty.ArrayType):
                base = self.eval_address(lvalue.base, ctx)
                elem = base_type.element.sizeof(self.pointer_size) or 1
            else:
                base = self.eval(lvalue.base, ctx)
                elem = 1
                if isinstance(base_type, ty.PointerType):
                    elem = base_type.target.sizeof(self.pointer_size) or 1
            index = self.eval(lvalue.index, ctx)
            if not base.is_pointer or not index.is_int:
                return Value.any_pointer()
            return Value.pointer_to_many(base.targets,
                                         base.offset_lo + index.lo * elem,
                                         base.offset_hi + index.hi * elem,
                                         base.may_be_null)
        if isinstance(lvalue, ast.Member):
            if lvalue.arrow:
                base = self.eval(lvalue.base, ctx)
                struct_type = lvalue.base.ctype
                if isinstance(struct_type, ty.PointerType):
                    struct_type = struct_type.target
            else:
                base = self.eval_address(lvalue.base, ctx)
                struct_type = lvalue.base.ctype
            if not base.is_pointer or not isinstance(struct_type, ty.StructType):
                return Value.any_pointer()
            resolved = self.program.structs.get(struct_type.name) or struct_type
            try:
                offset = resolved.field_offset(lvalue.fieldname, self.pointer_size)
            except KeyError:
                return Value.any_pointer()
            return Value.pointer_to_many(base.targets,
                                         base.offset_lo + offset,
                                         base.offset_hi + offset,
                                         base.may_be_null)
        if isinstance(lvalue, ast.Deref):
            return self.eval(lvalue.pointer, ctx)
        return Value.any_pointer()

    # -- helpers -----------------------------------------------------------------

    def _object_target(self, name: str, ctx: EvalContext) -> Optional[MemoryTarget]:
        local = ctx.local_target(name)
        if local is not None:
            return local
        return global_target(self.program, name, self.pointer_size)
