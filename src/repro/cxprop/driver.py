"""The cXprop driver: iterate the analyses and transformations to a fixpoint.

This is the "run cXprop" box of the paper's Figure 1.  One invocation
repeatedly (up to ``max_rounds``) recomputes the whole-program facts, folds
constants and branches, propagates copies, optimizes atomic sections and
eliminates dead code, stopping when a round changes nothing.  The inliner is
*not* part of this driver — it is a separate pipeline stage, exactly as in
the paper, so the toolchain can measure its contribution independently
(Figure 2's third vs. fourth bars).

The fixpoint loop itself is expressed as a pass-manager combinator: this
module defines the configuration and the aggregate report, and
:func:`optimize_program` delegates to ``repro.cxprop.passes.CxpropPass`` (a
``FixpointPass`` over the facts/fold/copyprop/atomic/dce passes), which is
also what the build pipeline's pass lists use directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor.program import Program
from repro.cxprop.atomic_opt import AtomicOptReport
from repro.cxprop.copyprop import CopyPropReport
from repro.cxprop.dce import DceReport
from repro.cxprop.fold import FoldReport


@dataclass
class CxpropConfig:
    """Configuration of one cXprop run.

    Attributes:
        domain: Name of the abstract domain (``constant``, ``interval``,
            ``valueset``).
        max_rounds: Upper bound on analyze/transform rounds.
        enable_fold: Run constant propagation and branch folding.
        enable_copyprop: Run copy propagation.
        enable_dce: Run dead code/data elimination.
        enable_atomic_opt: Run atomic-section optimization.
        pointer_size: Target pointer width in bytes.  ``None`` (the default)
            derives it from the program's target platform, so non-AVR cost
            models analyze with the right width; set it explicitly to pin a
            width regardless of platform.
    """

    domain: str = "interval"
    max_rounds: int = 3
    enable_fold: bool = True
    enable_copyprop: bool = True
    enable_dce: bool = True
    enable_atomic_opt: bool = True
    pointer_size: Optional[int] = None


def resolve_pointer_size(program: Program, config: CxpropConfig) -> int:
    """The pointer width cXprop analyzes ``program`` with.

    An explicit ``config.pointer_size`` wins; otherwise the width comes from
    the program's target platform (2 bytes on both the Mica2's AVR and the
    TelosB's MSP430), falling back to 2 for programs built outside the
    TinyOS suite with an unregistered platform name.
    """
    if config.pointer_size is not None:
        return config.pointer_size
    from repro.tinyos.hardware import PLATFORMS

    platform = PLATFORMS.get(program.platform)
    return platform.pointer_bytes if platform is not None else 2


@dataclass
class CxpropReport:
    """Aggregated statistics over all rounds of one cXprop run."""

    rounds: int = 0
    fold: FoldReport = field(default_factory=FoldReport)
    copyprop: CopyPropReport = field(default_factory=CopyPropReport)
    dce: DceReport = field(default_factory=DceReport)
    atomic: AtomicOptReport = field(default_factory=AtomicOptReport)

    def summary(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "branches_folded": self.fold.branches_folded,
            "constants_substituted": self.fold.constants_substituted,
            "copies_propagated": self.copyprop.copies_propagated,
            "functions_removed": self.dce.functions_removed,
            "globals_removed": self.dce.globals_removed,
            "dead_stores_removed": self.dce.dead_stores_removed,
            "nested_atomic_removed": self.atomic.nested_removed,
            "irq_saves_avoided": self.atomic.irq_saves_avoided,
        }


def optimize_program(program: Program,
                     config: Optional[CxpropConfig] = None) -> CxpropReport:
    """Run cXprop over ``program`` in place and return the aggregate report."""
    from repro.cxprop.passes import CxpropPass
    from repro.toolchain.passes import PassContext

    ctx = PassContext(program=program)
    outcome = CxpropPass(config or CxpropConfig()).run(program, ctx)
    report = outcome.detail
    assert isinstance(report, CxpropReport)
    return report
