"""The cXprop driver: iterate the analyses and transformations to a fixpoint.

This is the "run cXprop" box of the paper's Figure 1.  One invocation
repeatedly (up to ``max_rounds``) recomputes the whole-program facts, folds
constants and branches, propagates copies, optimizes atomic sections and
eliminates dead code, stopping when a round changes nothing.  The inliner is
*not* part of this driver — it is a separate pipeline stage, exactly as in
the paper, so the toolchain can measure its contribution independently
(Figure 2's third vs. fourth bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor.program import Program
from repro.cminor.typecheck import check_program
from repro.cxprop.atomic_opt import AtomicOptReport, optimize_atomic_sections
from repro.cxprop.copyprop import CopyPropReport, propagate_copies
from repro.cxprop.dce import DceReport, eliminate_dead_code
from repro.cxprop.domains import make_domain
from repro.cxprop.fold import FoldReport, fold_program
from repro.cxprop.interproc import compute_whole_program_facts


@dataclass
class CxpropConfig:
    """Configuration of one cXprop run.

    Attributes:
        domain: Name of the abstract domain (``constant``, ``interval``,
            ``valueset``).
        max_rounds: Upper bound on analyze/transform rounds.
        enable_fold: Run constant propagation and branch folding.
        enable_copyprop: Run copy propagation.
        enable_dce: Run dead code/data elimination.
        enable_atomic_opt: Run atomic-section optimization.
        pointer_size: Target pointer width in bytes.
    """

    domain: str = "interval"
    max_rounds: int = 3
    enable_fold: bool = True
    enable_copyprop: bool = True
    enable_dce: bool = True
    enable_atomic_opt: bool = True
    pointer_size: int = 2


@dataclass
class CxpropReport:
    """Aggregated statistics over all rounds of one cXprop run."""

    rounds: int = 0
    fold: FoldReport = field(default_factory=FoldReport)
    copyprop: CopyPropReport = field(default_factory=CopyPropReport)
    dce: DceReport = field(default_factory=DceReport)
    atomic: AtomicOptReport = field(default_factory=AtomicOptReport)

    def summary(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "branches_folded": self.fold.branches_folded,
            "constants_substituted": self.fold.constants_substituted,
            "copies_propagated": self.copyprop.copies_propagated,
            "functions_removed": self.dce.functions_removed,
            "globals_removed": self.dce.globals_removed,
            "dead_stores_removed": self.dce.dead_stores_removed,
            "nested_atomic_removed": self.atomic.nested_removed,
            "irq_saves_avoided": self.atomic.irq_saves_avoided,
        }


def optimize_program(program: Program,
                     config: Optional[CxpropConfig] = None) -> CxpropReport:
    """Run cXprop over ``program`` in place and return the aggregate report."""
    config = config or CxpropConfig()
    domain = make_domain(config.domain)
    report = CxpropReport()

    for _round in range(config.max_rounds):
        changed = 0
        facts = compute_whole_program_facts(program, config.pointer_size)

        if config.enable_fold:
            fold_report = fold_program(program, facts, domain)
            report.fold.merge(fold_report)
            changed += fold_report.total

        if config.enable_copyprop:
            copy_report = propagate_copies(program, facts.address_taken_locals)
            report.copyprop.copies_propagated += copy_report.copies_propagated
            report.copyprop.functions_touched += copy_report.functions_touched
            changed += copy_report.copies_propagated

        if config.enable_atomic_opt:
            atomic_report = optimize_atomic_sections(program)
            report.atomic.nested_removed += atomic_report.nested_removed
            report.atomic.irq_saves_avoided += atomic_report.irq_saves_avoided
            report.atomic.always_atomic_functions |= \
                atomic_report.always_atomic_functions
            changed += atomic_report.nested_removed

        if config.enable_dce:
            dce_report = eliminate_dead_code(program)
            report.dce.functions_removed += dce_report.functions_removed
            report.dce.globals_removed += dce_report.globals_removed
            report.dce.dead_stores_removed += dce_report.dead_stores_removed
            report.dce.locals_removed += dce_report.locals_removed
            report.dce.statements_removed += dce_report.statements_removed
            changed += dce_report.total

        report.rounds += 1
        if changed == 0:
            break

    check_program(program)
    return report
