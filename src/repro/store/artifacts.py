"""Disk-backed, content-addressed artifact store for the api layer.

The :class:`~repro.api.workbench.Workbench` memoizes build, simulation and
scenario records by spec content key — but only for one session.  The
:class:`ArtifactStore` makes that cache durable: one directory shared by
every process, keyed by the same sha256 content keys, so a cold session
with a warm store serves an identical spec from disk in microseconds
instead of re-running the toolchain.

Two entry kinds live side by side in the store directory:

``<key>.json`` — **records**.  A JSON envelope wrapping one
    ``BuildRecord`` / ``SimRecord`` / ``ScenarioRecord`` ``to_dict()``
    payload.  The envelope carries the store format version, the api
    schema version, the key, and a sha256 digest of the payload's
    canonical JSON, so truncation, corruption and version drift are all
    detected on load and demoted to labelled-warning misses.

``<key>.snap`` — **prefix snapshots**.  A pickled envelope wrapping one
    sweep-runner prefix snapshot (the program state at a persistent
    pass-list prefix — the nesC front end or the CCured stage).  Hydrating
    these lets a *novel* variant of a known application skip the shared
    front end even in a session that never built the application at all.

Writer discipline follows :class:`~repro.avrora.codestore.PlanStore`
(PR 7): stage to a temp file in the store directory, publish with
``os.replace``.  Concurrent writers race benignly — every writer for one
key produces an equivalent entry by construction, last writer wins, and a
concurrent reader only ever observes a complete envelope.

Eviction is LRU-ish by whole entry: every hit freshens the entry's mtime,
and :meth:`ArtifactStore.gc` removes the stalest entries until the store
fits a byte budget.  A store constructed with ``budget_bytes`` runs that
pass automatically after each write.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
from typing import Optional

logger = logging.getLogger(__name__)

#: Version of the on-disk envelope layout itself (bump on layout changes).
FORMAT_VERSION = 1

#: Label prefixed to every warning so operators can grep for store trouble.
_WARN = "artifact-store"

_RECORD_SUFFIX = ".json"
_SNAPSHOT_SUFFIX = ".snap"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(material: dict) -> str:
    """The api layer's digest convention: sha256 of canonical JSON."""
    return hashlib.sha256(_canonical(material).encode("utf-8")).hexdigest()


def snapshot_key(app: str, prefix: tuple[str, ...], schema: int) -> str:
    """Content-addressed key of one (application, pass-list prefix) snapshot.

    The prefix is the sequence of pass cache keys up to the snapshot
    point, so any configuration change that alters what those passes
    produce changes the key — stale programs miss instead of mis-loading.
    """
    return content_digest({
        "kind": "snapshot",
        "schema": schema,
        "app": app,
        "prefix": list(prefix),
    })[:16]


class ArtifactStore:
    """Content-addressed directory of record JSON and snapshot pickles.

    Args:
        root: Store directory (created on first write).
        schema: The api layer's ``SCHEMA_VERSION``; entries stamped with a
            different schema are demoted to misses.  Passed in rather than
            imported so the store package has no dependency on
            :mod:`repro.api` (the api layer imports *us*).
        budget_bytes: Optional size budget; when set, every write is
            followed by an LRU eviction pass (see :meth:`gc`).

    Counters (``record_hits`` … ``evicted``) feed
    :meth:`~repro.api.workbench.Workbench.stats` and the job service's
    ``/stats`` endpoint.
    """

    __slots__ = ("root", "schema", "budget_bytes", "record_hits",
                 "record_misses", "snapshot_hits", "snapshot_misses",
                 "stores", "errors", "evicted")

    def __init__(self, root: str, *, schema: int,
                 budget_bytes: Optional[int] = None) -> None:
        self.root = os.fspath(root)
        self.schema = schema
        self.budget_bytes = budget_bytes
        self.record_hits = 0
        self.record_misses = 0
        self.snapshot_hits = 0
        self.snapshot_misses = 0
        self.stores = 0
        self.errors = 0
        self.evicted = 0

    # -- paths -----------------------------------------------------------------

    def _record_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}{_RECORD_SUFFIX}")

    def _snapshot_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}{_SNAPSHOT_SUFFIX}")

    def has_record(self, key: str) -> bool:
        return os.path.exists(self._record_path(key))

    def has_snapshot(self, key: str) -> bool:
        return os.path.exists(self._snapshot_path(key))

    # -- records ---------------------------------------------------------------

    def load_record(self, key: str) -> Optional[dict]:
        """The record payload stored under ``key``, or None on any miss.

        Corrupt, truncated, version-stale or digest-mismatched entries are
        demoted to misses with a labelled warning; the caller falls back
        to building.  A hit freshens the entry's mtime (the LRU clock).
        """
        path = self._record_path(key)
        raw = self._read(path)
        if raw is None:
            self.record_misses += 1
            return None
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.errors += 1
            self.record_misses += 1
            logger.warning("%s: corrupt record %s (%s); rebuilding",
                           _WARN, path, exc)
            return None
        payload = self._open_envelope(envelope, key, path)
        if payload is None:
            self.record_misses += 1
            return None
        if content_digest(payload) != envelope.get("digest"):
            self.errors += 1
            self.record_misses += 1
            logger.warning("%s: digest mismatch in %s; rebuilding",
                           _WARN, path)
            return None
        self._touch(path)
        self.record_hits += 1
        return payload

    def store_record(self, key: str, payload: dict) -> bool:
        """Persist one record ``to_dict()`` payload atomically."""
        envelope = {
            "format": FORMAT_VERSION,
            "schema": self.schema,
            "key": key,
            "digest": content_digest(payload),
            "payload": payload,
        }
        blob = (json.dumps(envelope, sort_keys=True) + "\n").encode("utf-8")
        return self._publish(self._record_path(key), blob)

    # -- snapshots -------------------------------------------------------------

    def load_snapshot(self, key: str) -> Optional[object]:
        """The unpickled snapshot payload under ``key``, or None on a miss."""
        path = self._snapshot_path(key)
        raw = self._read(path)
        if raw is None:
            self.snapshot_misses += 1
            return None
        try:
            envelope = pickle.loads(raw)
        except Exception as exc:  # truncated / corrupt pickle stream
            self.errors += 1
            self.snapshot_misses += 1
            logger.warning("%s: corrupt snapshot %s (%s); rebuilding",
                           _WARN, path, exc)
            return None
        blob = self._open_envelope(envelope, key, path)
        if not isinstance(blob, bytes):
            self.snapshot_misses += 1
            return None
        if hashlib.sha256(blob).hexdigest() != envelope.get("digest"):
            self.errors += 1
            self.snapshot_misses += 1
            logger.warning("%s: digest mismatch in %s; rebuilding",
                           _WARN, path)
            return None
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # pragma: no cover - digest guards this
            self.errors += 1
            self.snapshot_misses += 1
            logger.warning("%s: undecodable snapshot payload in %s (%s); "
                           "rebuilding", _WARN, path, exc)
            return None
        self._touch(path)
        self.snapshot_hits += 1
        return payload

    def store_snapshot(self, key: str, payload: object) -> bool:
        """Persist one picklable snapshot payload atomically."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "format": FORMAT_VERSION,
            "schema": self.schema,
            "key": key,
            "digest": hashlib.sha256(blob).hexdigest(),
            "payload": blob,
        }
        return self._publish(
            self._snapshot_path(key),
            pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))

    # -- eviction --------------------------------------------------------------

    def entries(self) -> list[tuple[str, int, float]]:
        """Every store entry as ``(path, size_bytes, mtime)``, LRU first."""
        found: list[tuple[str, int, float]] = []
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return found
        for name in names:
            if not name.endswith((_RECORD_SUFFIX, _SNAPSHOT_SUFFIX)):
                continue
            path = os.path.join(self.root, name)
            try:
                status = os.stat(path)
            except OSError:
                continue  # raced with a concurrent eviction
            found.append((path, status.st_size, status.st_mtime))
        found.sort(key=lambda entry: entry[2])
        return found

    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self.entries())

    def gc(self, budget_bytes: Optional[int] = None) -> dict[str, int]:
        """Evict least-recently-used entries until the store fits a budget.

        Hits freshen mtimes, so eviction order approximates LRU at file
        granularity.  Returns a report; with no budget (here or on the
        constructor) this is a pure measurement pass.
        """
        budget = self.budget_bytes if budget_bytes is None else budget_bytes
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        report = {
            "entries": len(entries),
            "bytes_before": total,
            "bytes_after": total,
            "budget_bytes": budget if budget is not None else -1,
            "evicted": 0,
        }
        if budget is None:
            return report
        for path, size, _ in entries:
            if report["bytes_after"] <= budget:
                break
            try:
                os.unlink(path)
            except OSError:
                continue  # lost a race with another GC pass
            report["bytes_after"] -= size
            report["evicted"] += 1
            report["entries"] -= 1
            self.evicted += 1
        return report

    # -- shared plumbing -------------------------------------------------------

    def _open_envelope(self, envelope: object, key: str, path: str):
        """Version/identity checks shared by records and snapshots."""
        if not isinstance(envelope, dict) or \
                envelope.get("format") != FORMAT_VERSION or \
                envelope.get("schema") != self.schema:
            self.errors += 1
            logger.warning(
                "%s: version-stale entry %s (format=%r schema=%r, want "
                "%d/%d); rebuilding", _WARN, path,
                envelope.get("format") if isinstance(envelope, dict)
                else None,
                envelope.get("schema") if isinstance(envelope, dict)
                else None,
                FORMAT_VERSION, self.schema)
            return None
        if envelope.get("key") != key:
            self.errors += 1
            logger.warning("%s: entry %s names key %r, expected %r; "
                           "rebuilding", _WARN, path,
                           envelope.get("key"), key)
            return None
        return envelope.get("payload")

    @staticmethod
    def _read(path: str) -> Optional[bytes]:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            logger.warning("%s: unreadable entry %s (%s); rebuilding",
                           _WARN, path, exc)
            return None

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path)
        except OSError:
            pass  # the entry may have been evicted under us

    def _publish(self, path: str, blob: bytes) -> bool:
        """Atomic write-temp + rename; True on success, warning on failure."""
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self.errors += 1
            logger.warning("%s: cannot persist %s (%s); continuing without",
                           _WARN, path, exc)
            return False
        self.stores += 1
        if self.budget_bytes is not None:
            self.gc()
        return True

    def stats(self) -> dict[str, int]:
        return {
            "record_hits": self.record_hits,
            "record_misses": self.record_misses,
            "snapshot_hits": self.snapshot_hits,
            "snapshot_misses": self.snapshot_misses,
            "stores": self.stores,
            "errors": self.errors,
            "evicted": self.evicted,
        }
