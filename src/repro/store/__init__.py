"""``repro.store`` — persistent, content-addressed artifact storage.

The durability layer under :class:`repro.api.Workbench`: build, simulation
and scenario records plus sweep prefix snapshots, keyed by the api layer's
sha256 content keys and shared across sessions and processes.  See
:mod:`repro.store.artifacts` for the on-disk envelope format, concurrency
discipline and eviction policy, and the "artifact store + job service"
section of ``ARCHITECTURE.md`` for how the Workbench and the
``python -m repro serve`` job service route through it.
"""

from repro.store.artifacts import (
    FORMAT_VERSION,
    ArtifactStore,
    content_digest,
    snapshot_key,
)

__all__ = [
    "ArtifactStore",
    "FORMAT_VERSION",
    "content_digest",
    "snapshot_key",
]
