"""Safe TinyOS reproduction.

A from-scratch Python implementation of the toolchain, substrates and
evaluation of *"Efficient Type and Memory Safety for Tiny Embedded Systems"*
(Regehr, Cooprider, Archer, Eide — 2006): a C-subset front end, the nesC
component model and a TinyOS 1.x component library, a CCured-style safety
transformer, the cXprop whole-program optimizer with pluggable abstract
domains, a GCC-strength backend with AVR/MSP430 cost models, and an
Avrora-style sensor-network simulator.

Start with :class:`repro.api.Workbench` (the declarative spec/record API
and the ``python -m repro`` CLI) or the :class:`repro.core.SafeTinyOS`
facade built on top of it.
"""

from repro.api import (
    BuildRecord,
    BuildSpec,
    FaultPlan,
    ScenarioRecord,
    ScenarioSpec,
    SimRecord,
    SimSpec,
    SweepSpec,
    Workbench,
)
from repro.core import BuildOutcome, SafeTinyOS, SimulationOutcome

__version__ = "1.2.0"

__all__ = [
    "SafeTinyOS",
    "BuildOutcome",
    "SimulationOutcome",
    "Workbench",
    "BuildSpec",
    "SweepSpec",
    "SimSpec",
    "ScenarioSpec",
    "FaultPlan",
    "BuildRecord",
    "SimRecord",
    "ScenarioRecord",
    "__version__",
]
