"""The nesC layer's registered pipeline passes (front end of Figure 1)."""

from __future__ import annotations

from typing import Optional

from repro.cminor.program import Program
from repro.nesc.application import Application
from repro.nesc.flatten import flatten_application
from repro.nesc.hwrefactor import refactor_hardware_accesses
from repro.toolchain.passes import Pass, PassContext, PassOutcome, register_pass


@register_pass("nesc.flatten")
class FlattenPass(Pass):
    """Run the nesC compiler: flatten the wired application into a program.

    This pass *produces* the context's program (``outcome.program``); it is
    always the first pass of a pipeline.  The CIL-style simplifier and the
    nesC concurrency analysis run inside flattening, exactly as in the
    original toolchain.
    """

    name = "nesc.flatten"
    #: The produced program has a fresh (empty) analysis cache.
    invalidates_analysis = False

    def __init__(self, suppress_norace: bool = True):
        self.suppress_norace = suppress_norace

    def cache_key(self, variant=None) -> str:
        return f"{self.name}[norace={int(self.suppress_norace)}]"

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        app = ctx.application
        assert isinstance(app, Application), \
            "nesc.flatten needs ctx.application (a wired Application)"
        produced = flatten_application(app, suppress_norace=self.suppress_norace)
        return PassOutcome(changed=len(produced.functions),
                           detail=produced.summary(), program=produced)


@register_pass("nesc.hwrefactor")
class HwRefactorPass(Pass):
    """Rewrite constant-address hardware register accesses into helper calls."""

    name = "nesc.hwrefactor"

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, "nesc.hwrefactor needs a flattened program"
        report = refactor_hardware_accesses(program)
        return PassOutcome(changed=report.total, detail=report)
