"""nesC components.

A component bundles module-scope state, tasks, interrupt handlers and the
implementations of the interfaces it provides, together with declarations of
the interfaces it uses.  Implementation code is CMinor source text; the
naming conventions below are how that code refers to interface functions:

* a *command* ``cmd`` of a used interface instance ``X`` is called as
  ``X_cmd(...)``;
* an *event* ``ev`` of a used interface instance ``X`` is implemented by
  defining a function named ``X_ev``;
* a provider implements command ``cmd`` of a provided instance ``Y`` by
  defining ``Y_cmd`` and signals event ``ev`` by calling ``Y_ev(...)``.

The flattener resolves these names through the application's wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nesc.interface import Interface


@dataclass
class Component:
    """A nesC component (module).

    Attributes:
        name: Component name, used as the symbol prefix in the flattened
            program (``TimerC`` becomes the ``TimerC__`` prefix).
        provides: Mapping from interface instance name to interface.
        uses: Mapping from interface instance name to interface.
        source: CMinor source text with the component's module-scope
            variables, local functions, task functions, interface command
            implementations and event handlers.
        tasks: Names (unprefixed) of functions that are tasks.
        interrupts: Mapping from interrupt vector name to the (unprefixed)
            handler function name.
        init_priority: Components with lower values are initialized first by
            the generated ``main`` when they appear in the boot sequence.
    """

    name: str
    provides: dict[str, Interface] = field(default_factory=dict)
    uses: dict[str, Interface] = field(default_factory=dict)
    source: str = ""
    tasks: list[str] = field(default_factory=list)
    interrupts: dict[str, str] = field(default_factory=dict)
    init_priority: int = 100

    def interface_instances(self) -> dict[str, tuple[Interface, bool]]:
        """All interface instances: name -> (interface, is_provided)."""
        instances: dict[str, tuple[Interface, bool]] = {}
        for inst, iface in self.provides.items():
            instances[inst] = (iface, True)
        for inst, iface in self.uses.items():
            if inst in instances:
                raise ValueError(
                    f"{self.name}: interface instance {inst!r} both provided and used")
            instances[inst] = (iface, False)
        return instances

    def provided_instance(self, inst: str) -> Optional[Interface]:
        return self.provides.get(inst)

    def used_instance(self, inst: str) -> Optional[Interface]:
        return self.uses.get(inst)

    def validate(self) -> None:
        """Basic sanity checks, raised eagerly so errors point at the component."""
        self.interface_instances()
        for task in self.tasks:
            if f"void {task}" not in self.source and f" {task}(" not in self.source:
                raise ValueError(
                    f"{self.name}: task {task!r} has no definition in the source")
        for vector, handler in self.interrupts.items():
            if f" {handler}(" not in self.source:
                raise ValueError(
                    f"{self.name}: interrupt handler {handler!r} for vector "
                    f"{vector!r} has no definition in the source")
