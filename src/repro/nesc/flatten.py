"""The "nesC compiler": flattening a wired application into one program.

This stage reproduces what the nesC compiler does for TinyOS:

1. every component's module-scope symbols are renamed with a
   ``Component__`` prefix so they can coexist in one program;
2. calls to used-interface commands and signals of provided-interface events
   are resolved through the application's wiring (generating fan-out
   dispatchers and default event handlers where needed);
3. ``post task();`` statements are lowered to calls into a generated task
   scheduler, and a ``main`` function is generated that initializes and
   starts the boot components and then runs the scheduler loop;
4. interrupt handlers are registered in the program's vector table;
5. the nesC-style concurrency analysis computes the list of variables
   accessed non-atomically (consumed later by the modified CCured stage).

The result is a single type-checked :class:`~repro.cminor.program.Program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.errors import CMinorError
from repro.cminor.parser import parse_program
from repro.cminor.program import Program, StructTable, TranslationUnit
from repro.cminor.simplify import simplify_program
from repro.cminor.typecheck import check_program
from repro.cminor.visitor import (
    map_expression,
    replace_statement_expressions,
    transform_block,
    walk_statements,
)
from repro.nesc.application import Application
from repro.nesc.component import Component
from repro.nesc.concurrency import nesc_race_analysis
from repro.nesc.interface import COMMAND, EVENT, Interface

#: Size of the generated task queue (TinyOS 1.x uses a queue of 8 entries).
TASK_QUEUE_SIZE = 8


class WiringError(CMinorError):
    """Raised when interface references cannot be resolved through the wiring."""


@dataclass
class _ComponentContext:
    """Per-component naming information used during flattening."""

    component: Component
    unit: TranslationUnit
    local_symbols: set[str] = field(default_factory=set)

    def prefixed(self, name: str) -> str:
        return f"{self.component.name}__{name}"


def flatten_application(app: Application,
                        suppress_norace: bool = False) -> Program:
    """Flatten ``app`` into a single whole program.

    Args:
        app: The wired application.
        suppress_norace: When True, ``norace`` qualifiers are ignored by the
            concurrency analysis (Section 2.2 of the paper: Safe TinyOS must
            suppress ``norace`` so that safety-critical accesses are
            protected even when the programmer asserted there is no race).
    """
    return NescCompiler(app, suppress_norace=suppress_norace).compile()


class NescCompiler:
    """Flattens an :class:`Application` into a :class:`Program`."""

    def __init__(self, app: Application, suppress_norace: bool = False):
        self.app = app
        self.suppress_norace = suppress_norace
        self.structs = StructTable()
        self.common_globals: set[str] = set()
        self.contexts: list[_ComponentContext] = []
        self.task_ids: dict[str, int] = {}

    # -- public entry ----------------------------------------------------------

    def compile(self) -> Program:
        self.app.validate()
        program = Program(name=self.app.name, platform=self.app.platform,
                          structs=self.structs)

        common_unit = self._parse_common()
        for var in common_unit.globals:
            program.add_global(var)
        for func in common_unit.functions:
            program.add_function(func)

        for component in self.app.components:
            self.contexts.append(self._parse_component(component))

        self._collect_tasks()

        for context in self.contexts:
            self._rename_component(context)

        for context in self.contexts:
            for var in context.unit.globals:
                program.add_global(var)
            for func in context.unit.functions:
                program.add_function(func)

        self._add_default_handlers(program)
        self._add_fanout_dispatchers(program)
        self._lower_posts(program)
        self._generate_scheduler(program)
        self._generate_main(program)
        self._register_interrupts(program)

        program.tasks = [name for name, _ in
                         sorted(self.task_ids.items(), key=lambda item: item[1])]

        simplify_program(program)
        check_program(program)
        nesc_race_analysis(program, suppress_norace=self.suppress_norace)
        return program

    # -- parsing ---------------------------------------------------------------

    def _parse_common(self) -> TranslationUnit:
        source = self.app.common_source or ""
        unit = parse_program(source, f"{self.app.name}.common", self.structs)
        self.common_globals = {v.name for v in unit.globals}
        self.common_globals |= {f.name for f in unit.functions}
        return unit

    def _parse_component(self, component: Component) -> _ComponentContext:
        unit = parse_program(component.source, component.name, self.structs)
        local = {v.name for v in unit.globals} | {f.name for f in unit.functions}
        return _ComponentContext(component, unit, local)

    # -- task collection -------------------------------------------------------

    def _collect_tasks(self) -> None:
        next_id = 0
        for context in self.contexts:
            for task in context.component.tasks:
                if task not in context.local_symbols:
                    raise WiringError(
                        f"{context.component.name}: task {task!r} is not defined")
                self.task_ids[context.prefixed(task)] = next_id
                next_id += 1

    # -- renaming and wiring resolution ----------------------------------------

    def _rename_component(self, context: _ComponentContext) -> None:
        component = context.component
        rename: dict[str, str] = {name: context.prefixed(name)
                                  for name in context.local_symbols}

        for var in context.unit.globals:
            var.name = rename[var.name]
            var.origin = component.name
        for func in context.unit.functions:
            func.name = rename[func.name]
            func.origin = component.name

        for func in context.unit.functions:
            local_names = {p.name for p in func.params}
            for stmt in walk_statements(func.body):
                if isinstance(stmt, ast.VarDecl):
                    local_names.add(stmt.name)
                if isinstance(stmt, ast.Post):
                    if stmt.task not in rename:
                        raise WiringError(
                            f"{component.name}: post of unknown task {stmt.task!r}")
                    stmt.task = rename[stmt.task]
                replace_statement_expressions(
                    stmt, lambda e: self._rewrite_expr(e, context, rename, local_names))

    def _rewrite_expr(self, expr: ast.Expr, context: _ComponentContext,
                      rename: dict[str, str], local_names: set[str]) -> ast.Expr:
        if isinstance(expr, ast.Identifier):
            if expr.name in local_names:
                return expr
            if expr.name in rename:
                expr.name = rename[expr.name]
            return expr
        if isinstance(expr, ast.Call):
            expr.callee = self._resolve_callee(expr.callee, context, rename)
            return expr
        return expr

    def _resolve_callee(self, callee: str, context: _ComponentContext,
                        rename: dict[str, str]) -> str:
        component = context.component
        if callee in rename:
            return rename[callee]
        if callee.startswith("__"):
            return callee
        if callee in self.common_globals:
            return callee
        resolved = self._resolve_interface_call(callee, context)
        if resolved is not None:
            return resolved
        raise WiringError(
            f"{component.name}: call to {callee!r} cannot be resolved "
            "(not local, not a builtin, and not an interface function)")

    def _match_interface_call(self, callee: str, component: Component
                              ) -> Optional[tuple[str, Interface, bool, str]]:
        """Match ``Inst_func`` against the component's interface instances.

        Returns (instance, interface, is_provided, function name) or None.
        """
        for inst, (iface, provided) in component.interface_instances().items():
            prefix = inst + "_"
            if callee.startswith(prefix):
                func_name = callee[len(prefix):]
                if iface.has_function(func_name):
                    return inst, iface, provided, func_name
        return None

    def _resolve_interface_call(self, callee: str,
                                context: _ComponentContext) -> Optional[str]:
        component = context.component
        match = self._match_interface_call(callee, component)
        if match is None:
            return None
        inst, iface, provided, func_name = match
        func = iface.function(func_name)
        if not provided and func.kind == COMMAND:
            # ``call Inst.cmd()``: resolve through the wiring to the provider.
            wires = self.app.wires_from(component.name, inst)
            wire = wires[0]
            return f"{wire.provider}__{wire.provider_instance}_{func_name}"
        if provided and func.kind == EVENT:
            # ``signal Inst.ev()``: deliver to the wired user(s).
            wires = self.app.wires_to(component.name, inst)
            if not wires:
                return self._default_handler_name(component.name, inst, func_name)
            if len(wires) == 1:
                wire = wires[0]
                return f"{wire.user}__{wire.user_instance}_{func_name}"
            return self._fanout_name(component.name, inst, func_name)
        if not provided and func.kind == EVENT:
            raise WiringError(
                f"{component.name}: cannot signal event {callee!r} of a used interface")
        raise WiringError(
            f"{component.name}: cannot call command {callee!r} of a provided "
            "interface through the wiring (call the local implementation instead)")

    # -- synthesized functions -------------------------------------------------

    @staticmethod
    def _default_handler_name(component: str, inst: str, func_name: str) -> str:
        return f"{component}__{inst}_{func_name}__default"

    @staticmethod
    def _fanout_name(component: str, inst: str, func_name: str) -> str:
        return f"{component}__{inst}_{func_name}__fanout"

    def _iter_signals(self):
        """Yield (component, instance, interface, event) for every provided event."""
        for context in self.contexts:
            for inst, iface in context.component.provides.items():
                for func in iface.events():
                    yield context.component, inst, iface, func

    def _add_default_handlers(self, program: Program) -> None:
        for component, inst, _iface, func in self._iter_signals():
            wires = self.app.wires_to(component.name, inst)
            if wires:
                continue
            name = self._default_handler_name(component.name, inst, func.name)
            if program.lookup_function(name) is not None:
                continue
            program.add_function(self._make_stub(name, func, component.name))

    def _add_fanout_dispatchers(self, program: Program) -> None:
        for component, inst, _iface, func in self._iter_signals():
            wires = self.app.wires_to(component.name, inst)
            if len(wires) < 2:
                continue
            name = self._fanout_name(component.name, inst, func.name)
            if program.lookup_function(name) is not None:
                continue
            targets = [f"{w.user}__{w.user_instance}_{func.name}" for w in wires]
            program.add_function(
                self._make_fanout(name, func, targets, component.name))

    def _make_stub(self, name: str, func, origin: str) -> ast.FunctionDef:
        params = [ast.Param(pname, ptype) for pname, ptype in func.params]
        body = ast.Block([])
        if not func.return_type.is_void():
            ret = ast.Return(ast.IntLiteral(0))
            body.stmts.append(ret)
        return ast.FunctionDef(name=name, return_type=func.return_type,
                               params=params, body=body,
                               attributes={"inline": True}, origin=origin)

    def _make_fanout(self, name: str, func, targets: list[str],
                     origin: str) -> ast.FunctionDef:
        params = [ast.Param(pname, ptype) for pname, ptype in func.params]
        stmts: list[ast.Stmt] = []
        args = [ast.Identifier(pname) for pname, _ in func.params]
        returns_value = not func.return_type.is_void()
        if returns_value:
            stmts.append(ast.VarDecl("__result", func.return_type, ast.IntLiteral(0)))
        for target in targets:
            call = ast.Call(target, [ast.Identifier(a.name) for a in args])
            if returns_value:
                stmts.append(ast.Assign(ast.Identifier("__result"), call))
            else:
                stmts.append(ast.ExprStmt(call))
        if returns_value:
            stmts.append(ast.Return(ast.Identifier("__result")))
        return ast.FunctionDef(name=name, return_type=func.return_type,
                               params=params, body=ast.Block(stmts),
                               attributes={}, origin=origin)

    # -- post lowering, scheduler, main ----------------------------------------

    def _lower_posts(self, program: Program) -> None:
        def rewrite(stmt: ast.Stmt):
            if isinstance(stmt, ast.Post):
                task_id = self.task_ids.get(stmt.task)
                if task_id is None:
                    raise WiringError(f"post of unknown task {stmt.task!r}")
                call = ast.Call("__tos_post", [ast.IntLiteral(task_id)])
                call.loc = stmt.loc
                new_stmt = ast.ExprStmt(call)
                new_stmt.loc = stmt.loc
                return new_stmt
            return stmt

        for func in program.iter_functions():
            transform_block(func.body, rewrite)

    def _generate_scheduler(self, program: Program) -> None:
        dispatch_body = []
        for task_name, task_id in sorted(self.task_ids.items(), key=lambda i: i[1]):
            dispatch_body.append(
                f"  if (id == {task_id}) {{ {task_name}(); return; }}")
        dispatch = "\n".join(dispatch_body) if dispatch_body else "  return;"
        source = f"""
uint8_t __tos_queue[{TASK_QUEUE_SIZE}];
uint8_t __tos_head = 0;
uint8_t __tos_count = 0;

bool __tos_post(uint8_t id) {{
  bool ok = false;
  atomic {{
    if (__tos_count < {TASK_QUEUE_SIZE}) {{
      __tos_queue[(uint8_t)((__tos_head + __tos_count) % {TASK_QUEUE_SIZE})] = id;
      __tos_count = __tos_count + 1;
      ok = true;
    }}
  }}
  return ok;
}}

void __tos_dispatch(uint8_t id) {{
{dispatch}
}}

void __tos_run_next_or_sleep(void) {{
  uint8_t id = 0;
  bool have = false;
  atomic {{
    if (__tos_count > 0) {{
      id = __tos_queue[__tos_head];
      __tos_head = (uint8_t)((__tos_head + 1) % {TASK_QUEUE_SIZE});
      __tos_count = __tos_count - 1;
      have = true;
    }}
  }}
  if (have) {{
    __tos_dispatch(id);
  }} else {{
    __sleep();
  }}
}}
"""
        unit = parse_program(source, "__scheduler", self.structs)
        for var in unit.globals:
            var.origin = "__scheduler"
            program.add_global(var)
        for func in unit.functions:
            func.origin = "__scheduler"
            program.add_function(func)

    def _generate_main(self, program: Program) -> None:
        lines: list[str] = []
        for component_name, instance in self.app.boot:
            lines.append(f"  {component_name}__{instance}_init();")
        for component_name, instance in self.app.boot:
            lines.append(f"  {component_name}__{instance}_start();")
        boot_calls = "\n".join(lines)
        source = f"""
__spontaneous void main(void) {{
{boot_calls}
  __enable_interrupts();
  while (1) {{
    __tos_run_next_or_sleep();
  }}
}}
"""
        unit = parse_program(source, "__main", self.structs)
        for func in unit.functions:
            func.origin = "__main"
            program.add_function(func)

    def _register_interrupts(self, program: Program) -> None:
        for context in self.contexts:
            for vector, handler in context.component.interrupts.items():
                name = context.prefixed(handler)
                func = program.lookup_function(name)
                if func is None:
                    raise WiringError(
                        f"{context.component.name}: interrupt handler {handler!r} "
                        "was not found after flattening")
                if vector in program.interrupt_vectors:
                    raise WiringError(f"interrupt vector {vector!r} wired twice")
                func.attributes["interrupt"] = vector
                program.interrupt_vectors[vector] = name
