"""nesC applications: a set of components plus the wiring between them.

An :class:`Application` is the equivalent of a top-level nesC
``configuration``: it names the components involved, wires used interface
instances to provided interface instances, and lists the ``StdControl``
instances that the generated ``main`` must initialize and start (the role
the ``Main`` component plays in TinyOS 1.x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.nesc.component import Component


@dataclass(frozen=True)
class Wire:
    """A single wiring edge: user.instance -> provider.instance."""

    user: str
    user_instance: str
    provider: str
    provider_instance: str

    def __str__(self) -> str:
        return (f"{self.user}.{self.user_instance} -> "
                f"{self.provider}.{self.provider_instance}")


@dataclass
class Application:
    """A wired TinyOS application.

    Attributes:
        name: Application name (e.g. ``"Surge"``).
        platform: ``"mica2"`` or ``"telosb"``.
        components: The components that make up the application.
        wires: Wiring edges between used and provided interface instances.
        boot: Ordered ``(component, instance)`` pairs whose ``StdControl``
            commands the generated ``main`` calls (``init`` then ``start``).
        common_source: CMinor source shared by all components (struct
            definitions such as ``struct TOS_Msg`` and shared constants).
        description: One-line description used in reports.
    """

    name: str
    platform: str = "mica2"
    components: list[Component] = field(default_factory=list)
    wires: list[Wire] = field(default_factory=list)
    boot: list[tuple[str, str]] = field(default_factory=list)
    common_source: str = ""
    description: str = ""

    def component(self, name: str) -> Component:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"application {self.name} has no component {name!r}")

    def has_component(self, name: str) -> bool:
        return any(c.name == name for c in self.components)

    def add_component(self, component: Component) -> None:
        if self.has_component(component.name):
            raise ValueError(f"duplicate component {component.name!r}")
        self.components.append(component)

    def wire(self, user: str, user_instance: str,
             provider: str, provider_instance: str) -> None:
        """Add a wiring edge, validating both endpoints."""
        user_comp = self.component(user)
        provider_comp = self.component(provider)
        used = user_comp.used_instance(user_instance)
        provided = provider_comp.provided_instance(provider_instance)
        if used is None:
            raise ValueError(
                f"{user} does not use an interface instance named {user_instance!r}")
        if provided is None:
            raise ValueError(
                f"{provider} does not provide an interface instance named "
                f"{provider_instance!r}")
        if used.name != provided.name:
            raise ValueError(
                f"interface mismatch on wire {user}.{user_instance} -> "
                f"{provider}.{provider_instance}: {used.name} vs {provided.name}")
        self.wires.append(Wire(user, user_instance, provider, provider_instance))

    def wires_from(self, user: str, user_instance: str) -> list[Wire]:
        return [w for w in self.wires
                if w.user == user and w.user_instance == user_instance]

    def wires_to(self, provider: str, provider_instance: str) -> list[Wire]:
        return [w for w in self.wires
                if w.provider == provider and w.provider_instance == provider_instance]

    def validate(self) -> None:
        """Check that the wiring is complete and unambiguous.

        Every used interface instance must be wired to exactly one provider
        (fan-out of commands is not supported, matching the restrictions the
        TinyOS 1.x library components rely on); provided instances may be
        wired to any number of users (event fan-out is supported).
        """
        for comp in self.components:
            comp.validate()
            for inst in comp.uses:
                wires = self.wires_from(comp.name, inst)
                if not wires:
                    raise ValueError(
                        f"{self.name}: {comp.name}.{inst} is used but not wired")
                if len(wires) > 1:
                    raise ValueError(
                        f"{self.name}: {comp.name}.{inst} is wired to multiple "
                        "providers")
        for component_name, instance in self.boot:
            comp = self.component(component_name)
            if comp.provided_instance(instance) is None:
                raise ValueError(
                    f"{self.name}: boot entry {component_name}.{instance} is not "
                    "a provided interface instance")

    def component_names(self) -> list[str]:
        return [c.name for c in self.components]
