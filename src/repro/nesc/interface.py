"""nesC interface definitions.

An interface is a named, bidirectional contract: *commands* flow from the
user of the interface to its provider, and *events* flow from the provider
back to the user.  Interface functions are declared with CMinor types so the
flattener can generate correctly typed dispatch and default-handler code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminor import typesys as ty

COMMAND = "command"
EVENT = "event"


@dataclass(frozen=True)
class InterfaceFunction:
    """One command or event of an interface.

    Attributes:
        name: Function name within the interface (e.g. ``"fired"``).
        kind: ``"command"`` (user calls provider) or ``"event"`` (provider
            signals user).
        return_type: CMinor return type.
        params: Ordered (name, type) pairs.
    """

    name: str
    kind: str
    return_type: ty.CType = ty.VOID
    params: tuple[tuple[str, ty.CType], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (COMMAND, EVENT):
            raise ValueError(f"invalid interface function kind {self.kind!r}")


@dataclass(frozen=True)
class Interface:
    """A named nesC interface: a set of commands and events."""

    name: str
    functions: tuple[InterfaceFunction, ...] = ()

    def function(self, name: str) -> InterfaceFunction:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"interface {self.name} has no function {name!r}")

    def has_function(self, name: str) -> bool:
        return any(f.name == name for f in self.functions)

    def commands(self) -> list[InterfaceFunction]:
        return [f for f in self.functions if f.kind == COMMAND]

    def events(self) -> list[InterfaceFunction]:
        return [f for f in self.functions if f.kind == EVENT]


def command(name: str, return_type: ty.CType = ty.UINT8,
            params: tuple[tuple[str, ty.CType], ...] = ()) -> InterfaceFunction:
    """Convenience constructor for a command (default ``result_t`` return)."""
    return InterfaceFunction(name, COMMAND, return_type, params)


def event(name: str, return_type: ty.CType = ty.VOID,
          params: tuple[tuple[str, ty.CType], ...] = ()) -> InterfaceFunction:
    """Convenience constructor for an event."""
    return InterfaceFunction(name, EVENT, return_type, params)


# ---------------------------------------------------------------------------
# The standard TinyOS 1.x interfaces used by the component library and the
# twelve benchmark applications.  ``result_t`` is uint8_t (SUCCESS=1, FAIL=0),
# exactly as in TinyOS 1.x.
# ---------------------------------------------------------------------------

RESULT = ty.UINT8
TOS_MSG_PTR = ty.PointerType  # helper alias used below with the message struct


def standard_interfaces(msg_struct: ty.StructType) -> dict[str, Interface]:
    """Build the standard interface set.

    Args:
        msg_struct: The ``struct TOS_Msg`` type shared by the radio stack
            and applications.

    Returns:
        Mapping from interface name to :class:`Interface`.
    """
    msg_ptr = ty.PointerType(msg_struct)
    interfaces = [
        Interface("StdControl", (
            command("init"),
            command("start"),
            command("stop"),
        )),
        Interface("Timer", (
            command("start", RESULT, (("interval", ty.UINT32),)),
            command("stop"),
            event("fired", RESULT),
        )),
        Interface("Clock", (
            command("setRate", RESULT, (("interval", ty.UINT16),)),
            event("tick", RESULT),
        )),
        Interface("Leds", (
            command("redOn"), command("redOff"), command("redToggle"),
            command("greenOn"), command("greenOff"), command("greenToggle"),
            command("yellowOn"), command("yellowOff"), command("yellowToggle"),
            command("set", RESULT, (("value", ty.UINT8),)),
        )),
        Interface("ADC", (
            command("getData"),
            event("dataReady", RESULT, (("value", ty.UINT16),)),
        )),
        Interface("ADCControl", (
            command("init"),
            command("bindPort", RESULT, (("port", ty.UINT8), ("adcPort", ty.UINT8))),
        )),
        Interface("SendMsg", (
            command("send", RESULT, (("address", ty.UINT16),
                                     ("length", ty.UINT8),
                                     ("msg", msg_ptr))),
            event("sendDone", RESULT, (("msg", msg_ptr), ("success", ty.UINT8))),
        )),
        Interface("ReceiveMsg", (
            event("receive", msg_ptr, (("msg", msg_ptr),)),
        )),
        Interface("BareSendMsg", (
            command("send", RESULT, (("msg", msg_ptr),)),
            event("sendDone", RESULT, (("msg", msg_ptr), ("success", ty.UINT8))),
        )),
        Interface("RadioControl", (
            command("setListeningMode", RESULT, (("mode", ty.UINT8),)),
        )),
        Interface("Random", (
            command("init"),
            command("rand", ty.UINT16),
        )),
        Interface("Send", (
            command("send", RESULT, (("msg", msg_ptr), ("length", ty.UINT16))),
            event("sendDone", RESULT, (("msg", msg_ptr), ("success", ty.UINT8))),
        )),
        Interface("Intercept", (
            event("intercept", RESULT, (("msg", msg_ptr),
                                        ("payload", ty.PointerType(ty.UINT8)),
                                        ("len", ty.UINT16))),
        )),
        Interface("RouteControl", (
            command("getParent", ty.UINT16),
        )),
        Interface("TimeStamping", (
            command("getStamp", ty.UINT32),
            event("stamped", RESULT, (("stamp", ty.UINT32),)),
        )),
        Interface("Ident", (
            command("announce"),
        )),
        Interface("HLSensor", (
            command("sample"),
            event("ready", RESULT, (("value", ty.UINT16),)),
        )),
    ]
    return {iface.name: iface for iface in interfaces}
