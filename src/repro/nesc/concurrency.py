"""The nesC-style concurrency (race) analysis.

TinyOS has a two-level concurrency model: non-preemptive *tasks* (and the
main scheduler loop) run in the synchronous context, while *interrupt
handlers* run in the asynchronous context and may preempt tasks.  A global
variable that is touched from the asynchronous context and is not protected
by ``atomic`` sections at every access is a potential data race.

The nesC compiler performs exactly this analysis and, in the paper's
toolchain, emits the list of racy variables that the modified CCured uses to
decide which safety checks must be wrapped in locks (Section 2.2).  Like the
real nesC analysis, this implementation does **not** follow pointers — the
improved, pointer-aware detector lives in :mod:`repro.cxprop.race`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminor import ast_nodes as ast
from repro.cminor.callgraph import build_call_graph
from repro.cminor.program import Program
from repro.cminor.visitor import statement_expressions, walk_expression, walk_statements


@dataclass
class VariableAccess:
    """One syntactic access to a global variable."""

    variable: str
    function: str
    is_write: bool
    in_atomic: bool


@dataclass
class ConcurrencyReport:
    """Result of the concurrency analysis.

    Attributes:
        async_functions: Functions reachable from interrupt handlers.
        sync_functions: Functions reachable from ``main`` and tasks.
        accesses: Every global-variable access found.
        racy_variables: Variables reported as potential races.
        norace_skipped: Variables that would be racy but carry ``norace``.
    """

    async_functions: set[str] = field(default_factory=set)
    sync_functions: set[str] = field(default_factory=set)
    accesses: list[VariableAccess] = field(default_factory=list)
    racy_variables: set[str] = field(default_factory=set)
    norace_skipped: set[str] = field(default_factory=set)


def _collect_accesses(program: Program, func: ast.FunctionDef,
                      global_names: set[str]) -> list[VariableAccess]:
    """Find direct (non-pointer) accesses to globals inside ``func``."""
    from repro.cminor.typecheck import local_types

    locals_ = set(local_types(func))
    accesses: list[VariableAccess] = []

    def record(block: ast.Block, in_atomic: bool) -> None:
        for stmt in block.stmts:
            nested_atomic = in_atomic or isinstance(stmt, ast.Atomic)
            if isinstance(stmt, ast.Assign):
                base = _lvalue_base(stmt.lvalue)
                if base is not None and base not in locals_ and base in global_names:
                    accesses.append(VariableAccess(base, func.name, True, nested_atomic))
                _record_reads(stmt.rvalue, nested_atomic)
                _record_reads_lvalue_indices(stmt.lvalue, nested_atomic)
            else:
                for expr in statement_expressions(stmt):
                    _record_reads(expr, nested_atomic)
            if isinstance(stmt, ast.Atomic):
                record(stmt.body, True)
            elif isinstance(stmt, ast.If):
                record(stmt.then_body, nested_atomic if isinstance(stmt, ast.Atomic) else in_atomic)
                if stmt.else_body is not None:
                    record(stmt.else_body, in_atomic)
            elif isinstance(stmt, (ast.While, ast.DoWhile)):
                record(stmt.body, in_atomic)
            elif isinstance(stmt, ast.For):
                record(stmt.body, in_atomic)
            elif isinstance(stmt, ast.Block):
                record(stmt, in_atomic)

    def _record_reads(expr: ast.Expr, in_atomic: bool) -> None:
        for node in walk_expression(expr):
            if isinstance(node, ast.Identifier):
                if node.name not in locals_ and node.name in global_names:
                    accesses.append(
                        VariableAccess(node.name, func.name, False, in_atomic))

    def _record_reads_lvalue_indices(lvalue: ast.Expr, in_atomic: bool) -> None:
        # Reads that happen while computing the written location (array
        # indices, pointer bases of a deref, struct bases).
        if isinstance(lvalue, ast.Index):
            _record_reads(lvalue.index, in_atomic)
            _record_reads_lvalue_indices(lvalue.base, in_atomic)
        elif isinstance(lvalue, ast.Deref):
            _record_reads(lvalue.pointer, in_atomic)
        elif isinstance(lvalue, ast.Member):
            _record_reads_lvalue_indices(lvalue.base, in_atomic)

    record(func.body, False)
    return accesses


def _lvalue_base(lvalue: ast.Expr) -> str | None:
    """The root variable of an lvalue, or None if written through a pointer."""
    if isinstance(lvalue, ast.Identifier):
        return lvalue.name
    if isinstance(lvalue, ast.Index):
        return _lvalue_base(lvalue.base)
    if isinstance(lvalue, ast.Member):
        if lvalue.arrow:
            return None
        return _lvalue_base(lvalue.base)
    return None


def analyze_concurrency(program: Program,
                        suppress_norace: bool = False) -> ConcurrencyReport:
    """Run the nesC-style race analysis over ``program``."""
    report = ConcurrencyReport()
    graph = build_call_graph(program)

    interrupt_roots = program.interrupt_handlers()
    sync_roots = [program.entry] + [t for t in program.tasks
                                    if t in program.functions]
    report.async_functions = graph.reachable_from(interrupt_roots)
    report.sync_functions = graph.reachable_from(
        [r for r in sync_roots if r in program.functions])

    global_names = set(program.globals)
    by_variable: dict[str, list[VariableAccess]] = {}
    for func in program.iter_functions():
        for access in _collect_accesses(program, func, global_names):
            report.accesses.append(access)
            by_variable.setdefault(access.variable, []).append(access)

    for variable, accesses in by_variable.items():
        var = program.lookup_global(variable)
        if var is None:
            continue
        if var.is_const or var.is_volatile:
            # Constants cannot race; volatile hardware registers are handled
            # by the hardware access refactoring, not by locking.
            continue
        touched_async = any(a.function in report.async_functions for a in accesses)
        if not touched_async:
            continue
        only_async = all(a.function in report.async_functions
                         and a.function not in report.sync_functions
                         for a in accesses)
        if only_async:
            # Interrupt handlers do not preempt each other on these MCUs.
            continue
        unprotected = any(not a.in_atomic for a in accesses)
        if not unprotected:
            continue
        if var.is_norace and not suppress_norace:
            report.norace_skipped.add(variable)
            continue
        report.racy_variables.add(variable)

    return report


def nesc_race_analysis(program: Program, suppress_norace: bool = False
                       ) -> ConcurrencyReport:
    """Run the analysis and record the racy-variable list on the program."""
    report = analyze_concurrency(program, suppress_norace=suppress_norace)
    program.racy_variables = set(report.racy_variables)
    if suppress_norace:
        program.norace_suppressed = {
            v.name for v in program.iter_globals() if v.is_norace}
    return report
