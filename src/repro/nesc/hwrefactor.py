"""Hardware-register access refactoring.

TinyOS hardware-presentation components access memory-mapped device
registers by casting integer addresses to pointers and dereferencing them
(``*(uint8_t*)0x25 = value``).  CCured cannot prove anything about such
pointers — an integer-to-pointer cast makes the pointer WILD and drags in
expensive run-time metadata.  The paper's toolchain therefore rewrites these
accesses into calls to trusted helper functions *before* running CCured
(the "refactor accesses to hardware registers" box in Figure 1).

This pass performs that rewrite on the flattened program:

* ``*(uint8_t*)ADDR = e``  becomes  ``__hw_write8(ADDR, e)``
* ``*(uint16_t*)ADDR = e`` becomes  ``__hw_write16(ADDR, e)``
* ``*(uint8_t*)ADDR``      becomes  ``__hw_read8(ADDR)`` (in any expression)
* ``*(uint16_t*)ADDR``     becomes  ``__hw_read16(ADDR)``

Only *constant* addresses are rewritten; anything else is left for CCured to
reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program
from repro.cminor.typecheck import check_program
from repro.cminor.visitor import map_expression, replace_statement_expressions, \
    transform_block, walk_statements


@dataclass
class HwRefactorReport:
    """Statistics about the rewrite, used by tests and the pipeline report."""

    reads_rewritten: int = 0
    writes_rewritten: int = 0
    functions_touched: set[str] = field(default_factory=set)

    @property
    def total(self) -> int:
        return self.reads_rewritten + self.writes_rewritten


def _constant_register_address(expr: ast.Expr) -> tuple[int, int] | None:
    """Match ``(uintN_t*) CONSTANT`` and return (address, width in bits)."""
    if not isinstance(expr, ast.Cast):
        return None
    target = expr.target_type
    if not isinstance(target, ty.PointerType):
        return None
    pointee = target.target
    if not isinstance(pointee, ty.IntType):
        return None
    operand = expr.operand
    if isinstance(operand, ast.Cast):
        operand = operand.operand
    if not isinstance(operand, ast.IntLiteral):
        return None
    if pointee.bits not in (8, 16):
        return None
    return operand.value, pointee.bits


def refactor_hardware_accesses(program: Program) -> HwRefactorReport:
    """Rewrite constant-address register accesses into helper calls, in place."""
    report = HwRefactorReport()

    def rewrite_reads(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Deref):
            match = _constant_register_address(expr.pointer)
            if match is not None:
                address, bits = match
                report.reads_rewritten += 1
                call = ast.Call(f"__hw_read{bits}", [ast.IntLiteral(address)])
                call.loc = expr.loc
                return call
        return expr

    for func in program.iter_functions():
        before = report.total

        def rewrite_stmt(stmt: ast.Stmt):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.lvalue, ast.Deref):
                match = _constant_register_address(stmt.lvalue.pointer)
                if match is not None:
                    address, bits = match
                    report.writes_rewritten += 1
                    rvalue = map_expression(stmt.rvalue, rewrite_reads)
                    call = ast.Call(f"__hw_write{bits}",
                                    [ast.IntLiteral(address), rvalue])
                    call.loc = stmt.loc
                    new_stmt = ast.ExprStmt(call)
                    new_stmt.loc = stmt.loc
                    return new_stmt
            replace_statement_expressions(stmt, rewrite_reads)
            return stmt

        transform_block(func.body, rewrite_stmt)
        if report.total != before:
            report.functions_touched.add(func.name)

    program.invalidate_analysis()
    check_program(program)
    return report


def count_register_casts(program: Program) -> int:
    """Count remaining integer-to-pointer register accesses (for tests)."""
    from repro.cminor.visitor import walk_function_expressions

    remaining = 0
    for func in program.iter_functions():
        for expr in walk_function_expressions(func.body):
            if isinstance(expr, ast.Deref) and \
                    _constant_register_address(expr.pointer) is not None:
                remaining += 1
    return remaining
