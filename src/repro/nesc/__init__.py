"""The nesC component model and whole-program flattener.

TinyOS applications are written as graphs of *components* that provide and
use *interfaces*; the nesC compiler statically resolves the wiring and emits
a single C program.  This package reproduces that front end for CMinor:

* :mod:`repro.nesc.interface` — interface definitions (commands and events),
* :mod:`repro.nesc.component` — components with provides/uses sets, tasks,
  interrupt handlers and CMinor implementation code,
* :mod:`repro.nesc.application` — a wired application (the ``configuration``),
* :mod:`repro.nesc.flatten` — the "nesC compiler": resolves wiring, renames
  symbols, generates the task scheduler and ``main``, and produces a single
  :class:`~repro.cminor.program.Program`,
* :mod:`repro.nesc.concurrency` — the nesC-style concurrency analysis that
  reports variables accessed non-atomically (the race list the modified
  CCured consumes),
* :mod:`repro.nesc.hwrefactor` — the hardware-register access refactoring
  step of the paper's pipeline.
"""

from repro.nesc.interface import Interface, InterfaceFunction
from repro.nesc.component import Component
from repro.nesc.application import Application, Wire
from repro.nesc.flatten import NescCompiler, flatten_application
from repro.nesc.concurrency import nesc_race_analysis
from repro.nesc.hwrefactor import refactor_hardware_accesses

__all__ = [
    "Interface",
    "InterfaceFunction",
    "Component",
    "Application",
    "Wire",
    "NescCompiler",
    "flatten_application",
    "nesc_race_analysis",
    "refactor_hardware_accesses",
]
