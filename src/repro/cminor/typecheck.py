"""Type checker for CMinor programs.

The checker validates a whole :class:`~repro.cminor.program.Program` and
annotates every expression node with its computed type (``expr.ctype``).
Later passes — CCured's pointer-kind inference, the fat-pointer transform,
cXprop's abstract interpretation and the backend's lowering — all rely on
these annotations, so the toolchain re-runs the checker after transformation
passes that synthesize new expressions.
"""

from __future__ import annotations

from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.errors import SourceLocation, TypeCheckError
from repro.cminor.program import Program

_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}
_LOGICAL_OPS = {"&&", "||"}
_ARITH_OPS = {"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"}


def local_types(func: ast.FunctionDef) -> dict[str, ty.CType]:
    """Map every parameter and local variable of ``func`` to its type."""
    from repro.cminor.visitor import walk_statements

    table: dict[str, ty.CType] = {p.name: p.ctype for p in func.params}
    for stmt in walk_statements(func.body):
        if isinstance(stmt, ast.VarDecl):
            table[stmt.name] = stmt.ctype
    return table


class _Scope:
    """A lexical scope mapping variable names to types."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: dict[str, ty.CType] = {}

    def define(self, name: str, ctype: ty.CType, loc: Optional[SourceLocation]) -> None:
        if name in self.vars:
            raise TypeCheckError(f"redefinition of {name!r}", loc)
        self.vars[name] = ctype

    def lookup(self, name: str) -> Optional[ty.CType]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


class TypeChecker:
    """Checks and annotates a whole program."""

    def __init__(self, program: Program, pointer_size: int = 2):
        self.program = program
        self.pointer_size = pointer_size
        self._current_function: Optional[ast.FunctionDef] = None

    # -- program / function level ---------------------------------------------

    def check(self) -> None:
        """Type-check the whole program, annotating every expression."""
        for var in self.program.iter_globals():
            self._check_global(var)
        for func in self.program.iter_functions():
            self.check_function(func)

    def _check_global(self, var: ast.GlobalVar) -> None:
        if var.ctype.is_void():
            raise TypeCheckError(f"global {var.name!r} has void type", var.loc)
        if var.init is not None:
            self._check_initializer(var.init, var.ctype, var.loc, _Scope())

    def _check_initializer(self, init: ast.Expr, target: ty.CType,
                           loc: Optional[SourceLocation],
                           scope: Optional["_Scope"] = None) -> None:
        scope = scope if scope is not None else _Scope()
        if isinstance(init, ast.InitList):
            if isinstance(target, ty.ArrayType):
                if len(init.items) > target.length:
                    raise TypeCheckError("too many initializers for array", loc)
                for item in init.items:
                    self._check_initializer(item, target.element, loc, scope)
            elif isinstance(target, ty.StructType):
                if len(init.items) > len(target.fields):
                    raise TypeCheckError(
                        f"too many initializers for struct {target.name}", loc)
                for item, field in zip(init.items, target.fields):
                    self._check_initializer(item, field.ctype, loc, scope)
            else:
                raise TypeCheckError("initializer list for scalar value", loc)
            init.ctype = target
            return
        actual = self._check_expr(init, scope)
        if isinstance(target, ty.ArrayType) and isinstance(init, ast.StringLiteral):
            return
        if not ty.is_assignable(target, actual):
            raise TypeCheckError(
                f"cannot initialize {target} from {actual}", loc)

    def check_function(self, func: ast.FunctionDef) -> None:
        """Type-check one function definition."""
        self._current_function = func
        scope = _Scope()
        for param in func.params:
            if param.ctype.is_void():
                raise TypeCheckError(
                    f"parameter {param.name!r} has void type", func.loc)
            scope.define(param.name, param.ctype, func.loc)
        self._check_block(func.body, _Scope(scope))
        self._current_function = None

    # -- statements -----------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        for stmt in block.stmts:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.VarDecl):
            if stmt.ctype.is_void():
                raise TypeCheckError(f"variable {stmt.name!r} has void type", stmt.loc)
            if stmt.init is not None:
                self._check_initializer(stmt.init, stmt.ctype, stmt.loc, scope)
            scope.define(stmt.name, stmt.ctype, stmt.loc)
        elif isinstance(stmt, ast.Assign):
            lhs = self._check_expr(stmt.lvalue, scope)
            rhs = self._check_expr(stmt.rvalue, scope)
            if not ast.is_lvalue(stmt.lvalue):
                raise TypeCheckError("assignment target is not an lvalue", stmt.loc)
            if isinstance(lhs, ty.ArrayType):
                raise TypeCheckError("cannot assign to an array", stmt.loc)
            if not ty.is_assignable(lhs, rhs):
                raise TypeCheckError(f"cannot assign {rhs} to {lhs}", stmt.loc)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.cond, scope, stmt.loc)
            self._check_block(stmt.then_body, _Scope(scope))
            if stmt.else_body is not None:
                self._check_block(stmt.else_body, _Scope(scope))
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.cond, scope, stmt.loc)
            self._check_block(stmt.body, _Scope(scope))
        elif isinstance(stmt, ast.DoWhile):
            self._check_block(stmt.body, _Scope(scope))
            self._check_condition(stmt.cond, scope, stmt.loc)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner, stmt.loc)
            if stmt.update is not None:
                self._check_stmt(stmt.update, inner)
            self._check_block(stmt.body, _Scope(inner))
        elif isinstance(stmt, ast.Return):
            assert self._current_function is not None
            expected = self._current_function.return_type
            if stmt.value is None:
                if not expected.is_void():
                    raise TypeCheckError(
                        f"{self._current_function.name}: missing return value",
                        stmt.loc)
            else:
                actual = self._check_expr(stmt.value, scope)
                if expected.is_void():
                    raise TypeCheckError(
                        f"{self._current_function.name}: returning a value from "
                        "a void function", stmt.loc)
                if not ty.is_assignable(expected, actual):
                    raise TypeCheckError(
                        f"cannot return {actual} as {expected}", stmt.loc)
        elif isinstance(stmt, ast.Atomic):
            self._check_block(stmt.body, _Scope(scope))
        elif isinstance(stmt, ast.Post):
            if (stmt.task not in self.program.functions
                    and stmt.task not in self.program.tasks):
                raise TypeCheckError(f"post of unknown task {stmt.task!r}", stmt.loc)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Nop)):
            pass
        else:
            raise TypeCheckError(f"unknown statement kind {type(stmt).__name__}",
                                 getattr(stmt, "loc", None))

    def _check_condition(self, cond: ast.Expr, scope: _Scope,
                         loc: Optional[SourceLocation]) -> None:
        ctype = self._check_expr(cond, scope)
        if not (ctype.is_scalar() or isinstance(ctype, (ty.BoolType, ty.CharType))):
            raise TypeCheckError(f"condition has non-scalar type {ctype}", loc)

    # -- expressions ----------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ty.CType:
        ctype = self._infer_expr(expr, scope)
        expr.ctype = ctype
        return ctype

    def _infer_expr(self, expr: ast.Expr, scope: _Scope) -> ty.CType:
        if isinstance(expr, ast.IntLiteral):
            return self._literal_type(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return ty.PointerType(ty.CHAR)
        if isinstance(expr, ast.Identifier):
            return self._identifier_type(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            return self._binary_type(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            return self._unary_type(expr, scope)
        if isinstance(expr, ast.Deref):
            pointee = self._check_expr(expr.pointer, scope)
            pointee = pointee.decay()
            if not pointee.is_pointer():
                raise TypeCheckError(f"cannot dereference {pointee}", expr.loc)
            return pointee.target  # type: ignore[attr-defined]
        if isinstance(expr, ast.AddressOf):
            inner = self._check_expr(expr.lvalue, scope)
            if not ast.is_lvalue(expr.lvalue):
                raise TypeCheckError("cannot take the address of this expression",
                                     expr.loc)
            return ty.PointerType(inner)
        if isinstance(expr, ast.Index):
            base = self._check_expr(expr.base, scope)
            index = self._check_expr(expr.index, scope)
            if not index.is_integer():
                raise TypeCheckError(f"array index has type {index}", expr.loc)
            if isinstance(base, ty.ArrayType):
                return base.element
            if isinstance(base, ty.PointerType):
                return base.target
            raise TypeCheckError(f"cannot index a value of type {base}", expr.loc)
        if isinstance(expr, ast.Member):
            return self._member_type(expr, scope)
        if isinstance(expr, ast.Call):
            return self._call_type(expr, scope)
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.operand, scope)
            return expr.target_type
        if isinstance(expr, ast.SizeOf):
            inner = getattr(expr, "_sizeof_expr", None)
            if inner is not None:
                inner_type = self._check_expr(inner, scope)
                expr.of_type = inner_type
            return ty.UINT16
        if isinstance(expr, ast.Ternary):
            self._check_condition(expr.cond, scope, expr.loc)
            then = self._check_expr(expr.then, scope)
            otherwise = self._check_expr(expr.otherwise, scope)
            if then.is_integer() and otherwise.is_integer():
                return ty.common_arithmetic_type(then, otherwise)
            if not ty.is_assignable(then, otherwise):
                raise TypeCheckError(
                    f"incompatible ternary arms: {then} vs {otherwise}", expr.loc)
            return then.decay()
        if isinstance(expr, ast.InitList):
            raise TypeCheckError("initializer list used in expression context",
                                 expr.loc)
        raise TypeCheckError(f"unknown expression kind {type(expr).__name__}",
                             expr.loc)

    def _literal_type(self, value: int) -> ty.CType:
        if ty.INT16.min_value <= value <= ty.INT16.max_value:
            return ty.INT16
        if 0 <= value <= ty.UINT16.max_value:
            return ty.UINT16
        if ty.INT32.min_value <= value <= ty.INT32.max_value:
            return ty.INT32
        return ty.UINT32

    def _identifier_type(self, expr: ast.Identifier, scope: _Scope) -> ty.CType:
        local = scope.lookup(expr.name)
        if local is not None:
            return local
        var = self.program.lookup_global(expr.name)
        if var is not None:
            return var.ctype
        raise TypeCheckError(f"use of undeclared identifier {expr.name!r}", expr.loc)

    def _binary_type(self, expr: ast.BinaryOp, scope: _Scope) -> ty.CType:
        left = self._check_expr(expr.left, scope).decay()
        right = self._check_expr(expr.right, scope).decay()
        op = expr.op
        if op in _LOGICAL_OPS:
            return ty.BOOL
        if op in _COMPARISON_OPS:
            if left.is_pointer() != right.is_pointer():
                if not (left.is_integer() or right.is_integer()):
                    raise TypeCheckError(
                        f"cannot compare {left} with {right}", expr.loc)
            return ty.BOOL
        if op in _ARITH_OPS:
            if left.is_pointer() and right.is_integer() and op in ("+", "-"):
                return left
            if left.is_integer() and right.is_pointer() and op == "+":
                return right
            if left.is_pointer() and right.is_pointer() and op == "-":
                return ty.INT16
            if left.is_integer() and right.is_integer():
                return ty.common_arithmetic_type(left, right)
            raise TypeCheckError(
                f"invalid operands to {op!r}: {left} and {right}", expr.loc)
        raise TypeCheckError(f"unknown binary operator {op!r}", expr.loc)

    def _unary_type(self, expr: ast.UnaryOp, scope: _Scope) -> ty.CType:
        operand = self._check_expr(expr.operand, scope).decay()
        if expr.op == "!":
            if not operand.is_scalar():
                raise TypeCheckError(f"cannot negate {operand}", expr.loc)
            return ty.BOOL
        if expr.op in ("-", "~"):
            if not operand.is_integer():
                raise TypeCheckError(
                    f"invalid operand to unary {expr.op!r}: {operand}", expr.loc)
            return ty.common_arithmetic_type(operand, ty.INT16)
        raise TypeCheckError(f"unknown unary operator {expr.op!r}", expr.loc)

    def _member_type(self, expr: ast.Member, scope: _Scope) -> ty.CType:
        base = self._check_expr(expr.base, scope)
        if expr.arrow:
            base = base.decay()
            if not base.is_pointer():
                raise TypeCheckError(f"-> applied to non-pointer {base}", expr.loc)
            base = base.target  # type: ignore[attr-defined]
        if not isinstance(base, ty.StructType):
            raise TypeCheckError(f"member access on non-struct {base}", expr.loc)
        struct = self.program.structs.get(base.name) or base
        if not struct.has_field(expr.fieldname):
            raise TypeCheckError(
                f"struct {struct.name} has no field {expr.fieldname!r}", expr.loc)
        return struct.field_type(expr.fieldname)

    def _call_type(self, expr: ast.Call, scope: _Scope) -> ty.CType:
        arg_types = [self._check_expr(a, scope).decay() for a in expr.args]
        func = self.program.lookup_function(expr.callee)
        if func is not None:
            expected = [p.ctype for p in func.params]
            if len(arg_types) != len(expected):
                raise TypeCheckError(
                    f"{expr.callee} expects {len(expected)} arguments, "
                    f"got {len(arg_types)}", expr.loc)
            for i, (want, got) in enumerate(zip(expected, arg_types)):
                if not ty.is_assignable(want, got):
                    raise TypeCheckError(
                        f"{expr.callee}: argument {i + 1} has type {got}, "
                        f"expected {want}", expr.loc)
            return func.return_type
        builtin = self.program.lookup_builtin(expr.callee)
        if builtin is not None:
            if len(arg_types) != len(builtin.param_types):
                raise TypeCheckError(
                    f"{expr.callee} expects {len(builtin.param_types)} arguments, "
                    f"got {len(arg_types)}", expr.loc)
            for i, (want, got) in enumerate(zip(builtin.param_types, arg_types)):
                if not ty.is_assignable(want, got):
                    raise TypeCheckError(
                        f"{expr.callee}: argument {i + 1} has type {got}, "
                        f"expected {want}", expr.loc)
            return builtin.return_type
        raise TypeCheckError(f"call to undefined function {expr.callee!r}", expr.loc)

def check_program(program: Program, pointer_size: int = 2) -> Program:
    """Type-check ``program`` in place and return it."""
    TypeChecker(program, pointer_size).check()
    return program
