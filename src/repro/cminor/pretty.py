"""Pretty-printer: turn CMinor ASTs back into source text.

Every stage of the toolchain is source-to-source (as CCured and cXprop are
in the paper), so transformed programs can always be rendered back to CMinor
source — useful for debugging, for golden tests, and for the examples that
show what the instrumented program looks like.
"""

from __future__ import annotations

from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.program import Program

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_UNARY_PRECEDENCE = 11
_POSTFIX_PRECEDENCE = 12


class PrettyPrinter:
    """Renders expressions, statements, functions, and whole programs."""

    def __init__(self, indent: str = "  "):
        self.indent = indent

    # -- types ----------------------------------------------------------------

    def format_type(self, ctype: ty.CType, name: str = "") -> str:
        """Format a type, optionally with a declarator name (handles arrays)."""
        if isinstance(ctype, ty.ArrayType):
            inner = self.format_type(ctype.element, name)
            return f"{inner}[{ctype.length}]"
        prefix = str(ctype)
        if name:
            return f"{prefix} {name}"
        return prefix

    # -- expressions ----------------------------------------------------------

    def format_expr(self, expr: ast.Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr_with_precedence(expr)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_with_precedence(self, expr: ast.Expr) -> tuple[str, int]:
        if isinstance(expr, ast.IntLiteral):
            return str(expr.value), _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.StringLiteral):
            escaped = (expr.value.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0"))
            return f'"{escaped}"', _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Identifier):
            return expr.name, _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.BinaryOp):
            prec = _PRECEDENCE[expr.op]
            left = self.format_expr(expr.left, prec)
            right = self.format_expr(expr.right, prec + 1)
            return f"{left} {expr.op} {right}", prec
        if isinstance(expr, ast.UnaryOp):
            operand = self.format_expr(expr.operand, _UNARY_PRECEDENCE)
            return f"{expr.op}{operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.Deref):
            operand = self.format_expr(expr.pointer, _UNARY_PRECEDENCE)
            return f"*{operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.AddressOf):
            operand = self.format_expr(expr.lvalue, _UNARY_PRECEDENCE)
            return f"&{operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.Index):
            base = self.format_expr(expr.base, _POSTFIX_PRECEDENCE)
            return f"{base}[{self.format_expr(expr.index)}]", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Member):
            base = self.format_expr(expr.base, _POSTFIX_PRECEDENCE)
            sep = "->" if expr.arrow else "."
            return f"{base}{sep}{expr.fieldname}", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Call):
            args = ", ".join(self.format_expr(a) for a in expr.args)
            return f"{expr.callee}({args})", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Cast):
            operand = self.format_expr(expr.operand, _UNARY_PRECEDENCE)
            return f"({expr.target_type}){operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.SizeOf):
            return f"sizeof({expr.of_type})", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Ternary):
            cond = self.format_expr(expr.cond, 1)
            then = self.format_expr(expr.then)
            otherwise = self.format_expr(expr.otherwise)
            return f"{cond} ? {then} : {otherwise}", 0
        if isinstance(expr, ast.InitList):
            items = ", ".join(self.format_expr(i) for i in expr.items)
            return f"{{{items}}}", _POSTFIX_PRECEDENCE
        raise TypeError(f"cannot format expression {type(expr).__name__}")

    # -- statements -----------------------------------------------------------

    def format_stmt(self, stmt: ast.Stmt, level: int = 0) -> str:
        pad = self.indent * level
        if isinstance(stmt, ast.Block):
            return self.format_block(stmt, level)
        if isinstance(stmt, ast.VarDecl):
            decl = self.format_type(stmt.ctype, stmt.name)
            quals = " ".join(sorted(stmt.qualifiers))
            if quals:
                decl = f"{quals} {decl}"
            if stmt.init is not None:
                return f"{pad}{decl} = {self.format_expr(stmt.init)};"
            return f"{pad}{decl};"
        if isinstance(stmt, ast.Assign):
            return (f"{pad}{self.format_expr(stmt.lvalue)} = "
                    f"{self.format_expr(stmt.rvalue)};")
        if isinstance(stmt, ast.ExprStmt):
            return f"{pad}{self.format_expr(stmt.expr)};"
        if isinstance(stmt, ast.If):
            text = (f"{pad}if ({self.format_expr(stmt.cond)}) "
                    f"{self.format_block(stmt.then_body, level, inline=True)}")
            if stmt.else_body is not None:
                text += f" else {self.format_block(stmt.else_body, level, inline=True)}"
            return text
        if isinstance(stmt, ast.While):
            return (f"{pad}while ({self.format_expr(stmt.cond)}) "
                    f"{self.format_block(stmt.body, level, inline=True)}")
        if isinstance(stmt, ast.DoWhile):
            return (f"{pad}do {self.format_block(stmt.body, level, inline=True)} "
                    f"while ({self.format_expr(stmt.cond)});")
        if isinstance(stmt, ast.For):
            init = self._inline_stmt(stmt.init)
            cond = self.format_expr(stmt.cond) if stmt.cond is not None else ""
            update = self._inline_stmt(stmt.update)
            return (f"{pad}for ({init}; {cond}; {update}) "
                    f"{self.format_block(stmt.body, level, inline=True)}")
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                return f"{pad}return {self.format_expr(stmt.value)};"
            return f"{pad}return;"
        if isinstance(stmt, ast.Break):
            return f"{pad}break;"
        if isinstance(stmt, ast.Continue):
            return f"{pad}continue;"
        if isinstance(stmt, ast.Atomic):
            marker = " /* injected */" if stmt.synthetic else ""
            return (f"{pad}atomic{marker} "
                    f"{self.format_block(stmt.body, level, inline=True)}")
        if isinstance(stmt, ast.Post):
            return f"{pad}post {stmt.task}();"
        if isinstance(stmt, ast.Nop):
            return f"{pad};"
        raise TypeError(f"cannot format statement {type(stmt).__name__}")

    def _inline_stmt(self, stmt: Optional[ast.Stmt]) -> str:
        if stmt is None:
            return ""
        text = self.format_stmt(stmt, 0).strip()
        return text.rstrip(";")

    def format_block(self, block: ast.Block, level: int = 0,
                     inline: bool = False) -> str:
        pad = self.indent * level
        lines = [self.format_stmt(s, level + 1) for s in block.stmts]
        body = "\n".join(lines)
        if body:
            text = "{\n" + body + "\n" + pad + "}"
        else:
            text = "{\n" + pad + "}"
        if inline:
            return text
        return pad + text

    # -- declarations ---------------------------------------------------------

    def format_global(self, var: ast.GlobalVar) -> str:
        decl = self.format_type(var.ctype, var.name)
        quals = " ".join(sorted(var.qualifiers))
        if quals:
            decl = f"{quals} {decl}"
        if var.init is not None:
            return f"{decl} = {self.format_expr(var.init)};"
        return f"{decl};"

    def format_function(self, func: ast.FunctionDef) -> str:
        params = ", ".join(self.format_type(p.ctype, p.name) for p in func.params)
        if not params:
            params = "void"
        attrs = []
        if "interrupt" in func.attributes:
            attrs.append(f'__interrupt("{func.attributes["interrupt"]}") ')
        if func.attributes.get("spontaneous"):
            attrs.append("__spontaneous ")
        if func.attributes.get("inline"):
            attrs.append("__inline ")
        header = (f"{''.join(attrs)}{self.format_type(func.return_type)} "
                  f"{func.name}({params}) ")
        return header + self.format_block(func.body, 0, inline=True)

    def format_struct(self, struct: ty.StructType) -> str:
        lines = [f"struct {struct.name} {{"]
        for field in struct.fields:
            lines.append(f"{self.indent}{self.format_type(field.ctype, field.name)};")
        lines.append("};")
        return "\n".join(lines)

    def format_program(self, program: Program) -> str:
        """Render the whole program as a single CMinor source file."""
        parts: list[str] = [f"/* program: {program.name} (platform: {program.platform}) */"]
        for name in program.structs.names():
            struct = program.structs.get(name)
            if struct is not None and struct.fields:
                parts.append(self.format_struct(struct))
        for var in program.iter_globals():
            parts.append(self.format_global(var))
        for func in program.iter_functions():
            parts.append(self.format_function(func))
        return "\n\n".join(parts) + "\n"


def to_source(node: object, indent: str = "  ") -> str:
    """Render any AST node, function, or program to source text."""
    printer = PrettyPrinter(indent)
    if isinstance(node, Program):
        return printer.format_program(node)
    if isinstance(node, ast.FunctionDef):
        return printer.format_function(node)
    if isinstance(node, ast.GlobalVar):
        return printer.format_global(node)
    if isinstance(node, ast.Block):
        return printer.format_block(node)
    if isinstance(node, ast.Stmt):
        return printer.format_stmt(node)
    if isinstance(node, ast.Expr):
        return printer.format_expr(node)
    raise TypeError(f"cannot render {type(node).__name__}")
