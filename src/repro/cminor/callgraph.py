"""Whole-program call graph utilities.

Because CMinor has no function pointers, the call graph is exact: every call
site names its callee.  Several stages rely on it — the nesC concurrency
analysis (to split the program into task and interrupt contexts), cXprop's
interprocedural fixpoint, dead-code elimination, and the inliner's bottom-up
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminor import ast_nodes as ast
from repro.cminor.program import Program
from repro.cminor.visitor import collect_called_functions


@dataclass
class CallGraph:
    """A call graph over the functions of a program.

    Attributes:
        callees: Mapping from function name to the set of functions it calls
            (builtins included).
        callers: Reverse mapping (builtins excluded).
    """

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)

    def calls(self, name: str) -> set[str]:
        return self.callees.get(name, set())

    def called_by(self, name: str) -> set[str]:
        return self.callers.get(name, set())

    def reachable_from(self, roots: list[str]) -> set[str]:
        """All functions reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees.get(name, set()))
        return seen

    def bottom_up_order(self) -> list[str]:
        """Functions ordered so callees come before callers where possible.

        Cycles (direct or mutual recursion) are broken arbitrarily; the
        inliner refuses to inline recursive functions anyway.
        """
        order: list[str] = []
        visited: set[str] = set()
        on_stack: set[str] = set()

        def visit(name: str) -> None:
            if name in visited or name not in self.callees:
                return
            visited.add(name)
            on_stack.add(name)
            for callee in sorted(self.callees.get(name, set())):
                if callee not in on_stack:
                    visit(callee)
            on_stack.discard(name)
            order.append(name)

        for name in sorted(self.callees):
            visit(name)
        return order

    def recursive_functions(self) -> set[str]:
        """Functions that participate in a call cycle (including self-calls)."""
        recursive: set[str] = set()
        for name in self.callees:
            if self._reaches(name, name):
                recursive.add(name)
        return recursive

    def _reaches(self, start: str, target: str) -> bool:
        seen: set[str] = set()
        stack = list(self.callees.get(start, set()))
        while stack:
            name = stack.pop()
            if name == target:
                return True
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees.get(name, set()))
        return False


def build_call_graph(program: Program) -> CallGraph:
    """Build the exact call graph of ``program``."""
    graph = CallGraph()
    for func in program.iter_functions():
        graph.callees[func.name] = collect_called_functions(func.body)
    for caller, callees in graph.callees.items():
        for callee in callees:
            if callee in graph.callees:
                graph.callers.setdefault(callee, set()).add(caller)
    return graph
