"""The CMinor type system.

CMinor types mirror the subset of C types that matter to the Safe TinyOS
toolchain: fixed-width integers, ``bool``, ``char``, ``void``, pointers,
fixed-size arrays, ``struct`` types and function types.  Sizes are *target
dependent* only for pointers; the integer types are fixed-width by
construction, which is how TinyOS code is written in practice.

Types are immutable value objects: two structurally identical types compare
equal, which the inference machinery in :mod:`repro.ccured.infer` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


class CType:
    """Base class for CMinor types."""

    def is_integer(self) -> bool:
        return isinstance(self, (IntType, BoolType, CharType))

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def is_scalar(self) -> bool:
        """True for types that fit in a machine register (ints, pointers)."""
        return self.is_integer() or self.is_pointer()

    def sizeof(self, pointer_size: int = 2) -> int:
        """Size of a value of this type in bytes.

        Args:
            pointer_size: Target pointer width in bytes (2 on both the
                Mica2's AVR and the TelosB's MSP430).
        """
        raise NotImplementedError

    def alignment(self, pointer_size: int = 2) -> int:
        """Required alignment in bytes (1 on AVR, natural on MSP430)."""
        return 1

    def decay(self) -> "CType":
        """Array-to-pointer decay, as performed in r-value contexts."""
        if isinstance(self, ArrayType):
            return PointerType(self.element)
        return self


@dataclass(frozen=True)
class VoidType(CType):
    """The ``void`` type."""

    def sizeof(self, pointer_size: int = 2) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class BoolType(CType):
    """The ``bool`` type (one byte, values 0 and 1)."""

    def sizeof(self, pointer_size: int = 2) -> int:
        return 1

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class CharType(CType):
    """The ``char`` type (one byte, used for string data)."""

    def sizeof(self, pointer_size: int = 2) -> int:
        return 1

    def __str__(self) -> str:
        return "char"


@dataclass(frozen=True)
class IntType(CType):
    """A fixed-width integer type such as ``uint8_t`` or ``int16_t``.

    Attributes:
        bits: Width in bits (8, 16 or 32).
        signed: Whether the type is signed.
    """

    bits: int
    signed: bool

    def __post_init__(self) -> None:
        if self.bits not in (8, 16, 32):
            raise ValueError(f"unsupported integer width: {self.bits}")

    def sizeof(self, pointer_size: int = 2) -> int:
        return self.bits // 8

    @property
    def min_value(self) -> int:
        if self.signed:
            return -(1 << (self.bits - 1))
        return 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this type's range using two's-complement rules."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        prefix = "int" if self.signed else "uint"
        return f"{prefix}{self.bits}_t"


@dataclass(frozen=True)
class PointerType(CType):
    """A pointer type ``T*``."""

    target: CType

    def sizeof(self, pointer_size: int = 2) -> int:
        return pointer_size

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True)
class ArrayType(CType):
    """A fixed-size array type ``T[N]``."""

    element: CType
    length: int

    def sizeof(self, pointer_size: int = 2) -> int:
        return self.element.sizeof(pointer_size) * self.length

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class StructField:
    """A single field within a struct."""

    name: str
    ctype: CType


@dataclass(frozen=True)
class StructType(CType):
    """A ``struct`` type with named, ordered fields.

    Struct types compare by name *and* fields; the front end interns struct
    definitions per translation unit so that the same tag always maps to the
    same object.
    """

    name: str
    fields: tuple[StructField, ...] = field(default_factory=tuple)

    def sizeof(self, pointer_size: int = 2) -> int:
        return sum(f.ctype.sizeof(pointer_size) for f in self.fields)

    def field_type(self, name: str) -> CType:
        for f in self.fields:
            if f.name == name:
                return f.ctype
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_offset(self, name: str, pointer_size: int = 2) -> int:
        offset = 0
        for f in self.fields:
            if f.name == name:
                return offset
            offset += f.ctype.sizeof(pointer_size)
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FunctionType(CType):
    """A function type: return type plus ordered parameter types."""

    return_type: CType
    param_types: tuple[CType, ...] = field(default_factory=tuple)

    def sizeof(self, pointer_size: int = 2) -> int:
        return pointer_size

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types) or "void"
        return f"{self.return_type} (*)({params})"


# Canonical singletons used throughout the toolchain.
VOID = VoidType()
BOOL = BoolType()
CHAR = CharType()
INT8 = IntType(8, True)
UINT8 = IntType(8, False)
INT16 = IntType(16, True)
UINT16 = IntType(16, False)
INT32 = IntType(32, True)
UINT32 = IntType(32, False)

#: Mapping from type keywords accepted by the parser to type objects.
NAMED_TYPES: dict[str, CType] = {
    "void": VOID,
    "bool": BOOL,
    "char": CHAR,
    "int8_t": INT8,
    "uint8_t": UINT8,
    "int16_t": INT16,
    "uint16_t": UINT16,
    "int32_t": INT32,
    "uint32_t": UINT32,
    # ``int`` and ``unsigned`` follow the 16-bit convention of both target
    # microcontrollers (avr-gcc and msp430-gcc both use 16-bit int).
    "int": INT16,
    "unsigned": UINT16,
}


def common_arithmetic_type(left: CType, right: CType) -> IntType:
    """Return the type of an arithmetic operation on two integer operands.

    CMinor uses a simplified version of C's usual arithmetic conversions:
    operands are promoted to the wider of the two widths (minimum 16 bits,
    matching integer promotion on the targets); the result is unsigned if
    either promoted operand is unsigned and at least as wide as the other.
    """
    lw = _int_width(left)
    rw = _int_width(right)
    width = max(lw, rw, 16)
    l_signed = _int_signed(left)
    r_signed = _int_signed(right)
    if lw == rw:
        signed = l_signed and r_signed
    elif lw > rw:
        signed = l_signed
    else:
        signed = r_signed
    return IntType(width, signed)


def _int_width(ctype: CType) -> int:
    if isinstance(ctype, IntType):
        return ctype.bits
    if isinstance(ctype, (BoolType, CharType)):
        return 8
    raise TypeError(f"not an integer type: {ctype}")


def _int_signed(ctype: CType) -> bool:
    if isinstance(ctype, IntType):
        return ctype.signed
    if isinstance(ctype, BoolType):
        return False
    if isinstance(ctype, CharType):
        return True
    raise TypeError(f"not an integer type: {ctype}")


def integer_limits(ctype: CType) -> tuple[int, int]:
    """Return the (min, max) representable values of an integer type."""
    if isinstance(ctype, IntType):
        return ctype.min_value, ctype.max_value
    if isinstance(ctype, BoolType):
        return 0, 1
    if isinstance(ctype, CharType):
        return -128, 127
    raise TypeError(f"not an integer type: {ctype}")


def wrap_to(ctype: CType, value: int) -> int:
    """Wrap an integer value to the representable range of ``ctype``."""
    if isinstance(ctype, IntType):
        return ctype.wrap(value)
    if isinstance(ctype, BoolType):
        return 1 if value else 0
    if isinstance(ctype, CharType):
        return IntType(8, True).wrap(value)
    if isinstance(ctype, PointerType):
        return value & 0xFFFF
    raise TypeError(f"cannot wrap value of type {ctype}")


def is_assignable(dest: CType, src: CType) -> bool:
    """Whether a value of type ``src`` may be assigned to an lvalue of ``dest``.

    The rules are intentionally permissive in the same places C is (any
    integer converts to any integer; arrays decay; ``void*`` is a universal
    pointer) because the CCured stage, not the front end, is responsible for
    flagging dangerous conversions.
    """
    src = src.decay()
    if dest == src:
        return True
    if dest.is_integer() and src.is_integer():
        return True
    if dest.is_pointer() and src.is_pointer():
        dest_target = dest.target  # type: ignore[attr-defined]
        src_target = src.target  # type: ignore[attr-defined]
        if dest_target.is_void() or src_target.is_void():
            return True
        return dest_target == src_target
    if dest.is_pointer() and src.is_integer():
        # Integer-to-pointer conversion: accepted by the front end (TinyOS
        # device code does this for hardware registers) but flagged WILD by
        # CCured unless the hardware-refactoring pass removed it first.
        return True
    if dest.is_integer() and src.is_pointer():
        return True
    if dest.is_struct() and src.is_struct():
        return dest == src
    return False


def pointer_compatible(left: CType, right: CType) -> bool:
    """Whether two pointer types point at layout-compatible targets."""
    if not (left.is_pointer() and right.is_pointer()):
        return False
    lt = left.target  # type: ignore[attr-defined]
    rt = right.target  # type: ignore[attr-defined]
    if lt == rt:
        return True
    if lt.is_void() or rt.is_void():
        return True
    if lt.is_integer() and rt.is_integer():
        return lt.sizeof() == rt.sizeof()
    return False


def iter_struct_types(ctype: CType) -> Iterable[StructType]:
    """Yield every struct type reachable from ``ctype`` (including itself)."""
    seen: set[str] = set()

    def walk(t: CType) -> Iterable[StructType]:
        if isinstance(t, StructType):
            if t.name in seen:
                return
            seen.add(t.name)
            yield t
            for f in t.fields:
                yield from walk(f.ctype)
        elif isinstance(t, PointerType):
            yield from walk(t.target)
        elif isinstance(t, ArrayType):
            yield from walk(t.element)
        elif isinstance(t, FunctionType):
            yield from walk(t.return_type)
            for p in t.param_types:
                yield from walk(p)

    return walk(ctype)
