"""Program-level cache of derived per-function analyses.

Several layers recompute the same cheap-but-not-free derived facts over and
over: the simulator derives ``local_types`` and the statement→expression
mapping per interpreter instance, and every cXprop round recomputes them per
:class:`~repro.cxprop.dataflow.FunctionAnalysis`.  This module hoists those
results to the :class:`~repro.cminor.program.Program` so one computation
serves every consumer (``avrora`` and ``cxprop`` alike).

The cache is *invalidation-based*: transformation passes that mutate
function bodies call ``program.invalidate_analysis()`` (or the per-function
variant) when they are done.  Consumers must treat returned containers as
immutable — they are shared.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.typecheck import local_types
from repro.cminor.visitor import (
    statement_expressions,
    walk_expression,
    walk_statements,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cminor.program import Program


class ProgramAnalysisCache:
    """Memoized per-function analyses, keyed to one program.

    All returned mappings/sets/lists are shared between callers and must not
    be mutated.  After an AST transformation, call :meth:`invalidate`.
    """

    def __init__(self, program: "Program"):
        self._program = program
        self._local_types: dict[str, dict[str, ty.CType]] = {}
        self._address_taken: dict[str, frozenset[str]] = {}
        self._stmt_exprs: dict[int, tuple[ast.Expr, ...]] = {}
        #: node_id → owning function name, so per-function invalidation can
        #: drop the statement-expression entries it owns.
        self._stmt_owner: dict[int, str] = {}
        #: Lazily created simulator code cache (see :meth:`code_cache`).
        self._code_cache = None

    def code_cache(self):
        """The simulator's shared per-program code cache (lazy).

        Holds the node-independent lowering plans of
        :class:`~repro.avrora.engine.CompiledEngine`, so an N-node network
        runs the lowering front end once per function.  It lives here —
        rather than on each node — precisely so it is dropped by the same
        :meth:`invalidate` calls that transformation passes already make.
        """
        if self._code_cache is None:
            from repro.avrora.engine import CodeCache

            self._code_cache = CodeCache()
        return self._code_cache

    # -- queries ----------------------------------------------------------------

    def local_types(self, func: ast.FunctionDef) -> dict[str, ty.CType]:
        """Parameter and local variable types of ``func`` (shared, read-only)."""
        cached = self._local_types.get(func.name)
        if cached is None:
            cached = local_types(func)
            self._local_types[func.name] = cached
        return cached

    def statement_expressions(self, stmt: ast.Stmt,
                              func_name: str = "") -> tuple[ast.Expr, ...]:
        """The top-level expressions of ``stmt`` (shared, read-only)."""
        cached = self._stmt_exprs.get(stmt.node_id)
        if cached is None:
            cached = tuple(statement_expressions(stmt))
            self._stmt_exprs[stmt.node_id] = cached
            if func_name:
                self._stmt_owner[stmt.node_id] = func_name
        return cached

    def address_taken_locals(self, func: ast.FunctionDef) -> frozenset[str]:
        """Locals of ``func`` that must live in memory objects.

        This is the simulator's notion: locals whose address is taken
        through a chain of ``&``/index/member accesses, plus every aggregate
        local (arrays and structs always live in memory).
        """
        cached = self._address_taken.get(func.name)
        if cached is not None:
            return cached
        locals_ = self.local_types(func)
        taken: set[str] = set()
        for stmt in walk_statements(func.body):
            for expr in self.statement_expressions(stmt, func.name):
                for node in walk_expression(expr):
                    if isinstance(node, ast.AddressOf):
                        root = node.lvalue
                        while isinstance(root, (ast.Index, ast.Member)):
                            if isinstance(root, ast.Member) and root.arrow:
                                root = None
                                break
                            root = root.base
                        if isinstance(root, ast.Identifier) and \
                                root.name in locals_:
                            taken.add(root.name)
        for name, ctype in locals_.items():
            if isinstance(ctype, (ty.ArrayType, ty.StructType)):
                taken.add(name)
        frozen = frozenset(taken)
        self._address_taken[func.name] = frozen
        return frozen

    # -- invalidation -------------------------------------------------------------

    def invalidate(self, func_name: Optional[str] = None) -> None:
        """Drop cached results after an AST mutation.

        With ``func_name`` only that function's entries are dropped; without
        it the whole cache is cleared.  Statement-expression entries whose
        owner is unknown are always dropped (they may belong to any
        function).
        """
        if self._code_cache is not None:
            self._code_cache.invalidate(func_name)
        if func_name is None:
            self._local_types.clear()
            self._address_taken.clear()
            self._stmt_exprs.clear()
            self._stmt_owner.clear()
            return
        self._local_types.pop(func_name, None)
        self._address_taken.pop(func_name, None)
        orphaned = [node_id for node_id in self._stmt_exprs
                    if self._stmt_owner.get(node_id) in (func_name, None)]
        for node_id in orphaned:
            self._stmt_exprs.pop(node_id, None)
            self._stmt_owner.pop(node_id, None)
