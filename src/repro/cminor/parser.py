"""Recursive-descent parser for CMinor.

Produces the AST defined in :mod:`repro.cminor.ast_nodes`.  The parser
performs a small amount of desugaring so that later passes see a CIL-like
program form:

* compound assignments (``x += e``) become plain assignments
  (``x = x + e``),
* ``++``/``--`` statements become ``x = x + 1`` / ``x = x - 1``,
* ``true``/``false``/``NULL`` become integer literals,
* character literals become integer literals.
"""

from __future__ import annotations

from typing import Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.errors import ParseError, SourceLocation
from repro.cminor.lexer import Token, tokenize
from repro.cminor.program import StructTable, TranslationUnit

_TYPE_KEYWORDS = set(ty.NAMED_TYPES) | {"struct"}
_QUALIFIER_KEYWORDS = {"const", "volatile", "norace", "__progmem"}
_ATTRIBUTE_KEYWORDS = {"__interrupt", "__spontaneous", "__inline"}

_COMPOUND_ASSIGN_OPS = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "&=": "&",
    "|=": "|",
    "^=": "^",
    "<<=": "<<",
    ">>=": ">>",
}


class Parser:
    """Parses a token stream into a :class:`TranslationUnit`."""

    def __init__(self, tokens: list[Token], unit_name: str = "<string>",
                 structs: Optional[StructTable] = None):
        self.tokens = tokens
        self.pos = 0
        self.unit_name = unit_name
        self.structs = structs if structs is not None else StructTable()

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _expect_op(self, op: str) -> Token:
        tok = self._peek()
        if not tok.is_op(op):
            raise ParseError(f"expected {op!r}, found {tok.text!r}", tok.loc)
        return self._advance()

    def _expect_keyword(self, kw: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(kw):
            raise ParseError(f"expected {kw!r}, found {tok.text!r}", tok.loc)
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind != "ident":
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.loc)
        return self._advance()

    def _accept_op(self, op: str) -> bool:
        if self._peek().is_op(op):
            self._advance()
            return True
        return False

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind != "keyword":
            return False
        return tok.text in _TYPE_KEYWORDS or tok.text in _QUALIFIER_KEYWORDS

    # -- types ----------------------------------------------------------------

    def _parse_qualifiers(self) -> set[str]:
        quals: set[str] = set()
        while self._peek().kind == "keyword" and self._peek().text in _QUALIFIER_KEYWORDS:
            quals.add(self._advance().text)
        return quals

    def _parse_base_type(self) -> ty.CType:
        tok = self._peek()
        if tok.is_keyword("struct"):
            self._advance()
            name_tok = self._expect_ident()
            return self.structs.lookup(name_tok.text, name_tok.loc)
        if tok.kind == "keyword" and tok.text in ty.NAMED_TYPES:
            self._advance()
            return ty.NAMED_TYPES[tok.text]
        raise ParseError(f"expected a type, found {tok.text!r}", tok.loc)

    def _parse_type(self) -> tuple[ty.CType, set[str]]:
        """Parse ``qualifiers base_type '*'*`` and return (type, qualifiers)."""
        quals = self._parse_qualifiers()
        base = self._parse_base_type()
        quals |= self._parse_qualifiers()
        while self._accept_op("*"):
            base = ty.PointerType(base)
        return base, quals

    def _parse_array_suffix(self, base: ty.CType) -> ty.CType:
        while self._accept_op("["):
            size_tok = self._peek()
            if size_tok.kind != "int":
                raise ParseError("array size must be an integer constant", size_tok.loc)
            self._advance()
            self._expect_op("]")
            base = ty.ArrayType(base, size_tok.value)
        return base

    # -- top level ------------------------------------------------------------

    def parse_unit(self) -> TranslationUnit:
        """Parse a whole translation unit."""
        unit = TranslationUnit(name=self.unit_name, structs=self.structs)
        while self._peek().kind != "eof":
            self._parse_top_level(unit)
        return unit

    def _parse_top_level(self, unit: TranslationUnit) -> None:
        tok = self._peek()
        if tok.is_keyword("struct") and self._peek(2).is_op("{"):
            self._parse_struct_def()
            return
        attributes = self._parse_attributes()
        ctype, quals = self._parse_type()
        name_tok = self._expect_ident()
        if self._peek().is_op("("):
            func = self._parse_function_rest(name_tok, ctype, attributes)
            if func is not None:
                unit.functions.append(func)
            return
        if attributes:
            raise ParseError("attributes are only valid on functions", name_tok.loc)
        var = self._parse_global_rest(name_tok, ctype, quals)
        unit.globals.append(var)

    def _parse_attributes(self) -> dict[str, object]:
        attributes: dict[str, object] = {}
        while self._peek().kind == "keyword" and self._peek().text in _ATTRIBUTE_KEYWORDS:
            tok = self._advance()
            if tok.text == "__interrupt":
                self._expect_op("(")
                vec = self._peek()
                if vec.kind not in ("string", "ident"):
                    raise ParseError("__interrupt expects a vector name", vec.loc)
                self._advance()
                self._expect_op(")")
                attributes["interrupt"] = vec.text
            elif tok.text == "__spontaneous":
                attributes["spontaneous"] = True
            elif tok.text == "__inline":
                attributes["inline"] = True
        return attributes

    def _parse_struct_def(self) -> None:
        self._expect_keyword("struct")
        name_tok = self._expect_ident()
        self._expect_op("{")
        fields: list[ty.StructField] = []
        while not self._peek().is_op("}"):
            ftype, _quals = self._parse_type()
            fname = self._expect_ident()
            ftype = self._parse_array_suffix(ftype)
            self._expect_op(";")
            fields.append(ty.StructField(fname.text, ftype))
        self._expect_op("}")
        self._expect_op(";")
        self.structs.define(name_tok.text, fields, name_tok.loc)

    def _parse_global_rest(self, name_tok: Token, ctype: ty.CType,
                           quals: set[str]) -> ast.GlobalVar:
        ctype = self._parse_array_suffix(ctype)
        init: Optional[ast.Expr] = None
        if self._accept_op("="):
            init = self._parse_initializer()
        self._expect_op(";")
        return ast.GlobalVar(
            name=name_tok.text,
            ctype=ctype,
            init=init,
            qualifiers=frozenset(quals),
            origin=self.unit_name,
            loc=name_tok.loc,
        )

    def _parse_initializer(self) -> ast.Expr:
        if self._peek().is_op("{"):
            loc = self._advance().loc
            items: list[ast.Expr] = []
            if not self._peek().is_op("}"):
                items.append(self._parse_initializer())
                while self._accept_op(","):
                    if self._peek().is_op("}"):
                        break
                    items.append(self._parse_initializer())
            self._expect_op("}")
            node = ast.InitList(items)
            node.loc = loc
            return node
        return self.parse_expression()

    def _parse_function_rest(self, name_tok: Token, return_type: ty.CType,
                             attributes: dict[str, object]) -> Optional[ast.FunctionDef]:
        self._expect_op("(")
        params: list[ast.Param] = []
        if self._peek().is_keyword("void") and self._peek(1).is_op(")"):
            self._advance()
        elif not self._peek().is_op(")"):
            params.append(self._parse_param())
            while self._accept_op(","):
                params.append(self._parse_param())
        self._expect_op(")")
        if self._accept_op(";"):
            # A prototype: recorded implicitly; the definition must follow in
            # some unit before linking.
            return None
        body = self._parse_block()
        return ast.FunctionDef(
            name=name_tok.text,
            return_type=return_type,
            params=params,
            body=body,
            attributes=attributes,
            origin=self.unit_name,
            loc=name_tok.loc,
        )

    def _parse_param(self) -> ast.Param:
        ctype, _quals = self._parse_type()
        name_tok = self._expect_ident()
        ctype = self._parse_array_suffix(ctype)
        # Arrays decay to pointers in parameter position, as in C.
        if isinstance(ctype, ty.ArrayType):
            ctype = ty.PointerType(ctype.element)
        return ast.Param(name_tok.text, ctype)

    # -- statements -----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_tok = self._expect_op("{")
        stmts: list[ast.Stmt] = []
        while not self._peek().is_op("}"):
            stmts.append(self.parse_statement())
        self._expect_op("}")
        block = ast.Block(stmts)
        block.loc = open_tok.loc
        return block

    def parse_statement(self) -> ast.Stmt:
        """Parse a single statement."""
        tok = self._peek()
        if tok.is_op("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._advance()
            value = None
            if not self._peek().is_op(";"):
                value = self.parse_expression()
            self._expect_op(";")
            stmt: ast.Stmt = ast.Return(value)
            stmt.loc = tok.loc
            return stmt
        if tok.is_keyword("break"):
            self._advance()
            self._expect_op(";")
            stmt = ast.Break()
            stmt.loc = tok.loc
            return stmt
        if tok.is_keyword("continue"):
            self._advance()
            self._expect_op(";")
            stmt = ast.Continue()
            stmt.loc = tok.loc
            return stmt
        if tok.is_keyword("atomic"):
            self._advance()
            body = self._parse_block()
            stmt = ast.Atomic(body)
            stmt.loc = tok.loc
            return stmt
        if tok.is_keyword("post"):
            self._advance()
            task_tok = self._expect_ident()
            self._expect_op("(")
            self._expect_op(")")
            self._expect_op(";")
            stmt = ast.Post(task_tok.text)
            stmt.loc = tok.loc
            return stmt
        if tok.is_op(";"):
            self._advance()
            stmt = ast.Nop()
            stmt.loc = tok.loc
            return stmt
        if self._at_type():
            stmt = self._parse_local_decl()
            self._expect_op(";")
            return stmt
        stmt = self._parse_simple_statement()
        self._expect_op(";")
        return stmt

    def _parse_local_decl(self) -> ast.Stmt:
        loc = self._peek().loc
        ctype, quals = self._parse_type()
        name_tok = self._expect_ident()
        ctype = self._parse_array_suffix(ctype)
        init = None
        if self._accept_op("="):
            init = self._parse_initializer()
        decl = ast.VarDecl(name_tok.text, ctype, init, frozenset(quals))
        decl.loc = loc
        return decl

    def _parse_if(self) -> ast.Stmt:
        tok = self._expect_keyword("if")
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        then_body = self._as_block(self.parse_statement())
        else_body = None
        if self._peek().is_keyword("else"):
            self._advance()
            else_body = self._as_block(self.parse_statement())
        stmt = ast.If(cond, then_body, else_body)
        stmt.loc = tok.loc
        return stmt

    def _parse_while(self) -> ast.Stmt:
        tok = self._expect_keyword("while")
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        body = self._as_block(self.parse_statement())
        stmt = ast.While(cond, body)
        stmt.loc = tok.loc
        return stmt

    def _parse_do_while(self) -> ast.Stmt:
        tok = self._expect_keyword("do")
        body = self._as_block(self.parse_statement())
        self._expect_keyword("while")
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        self._expect_op(";")
        stmt = ast.DoWhile(body, cond)
        stmt.loc = tok.loc
        return stmt

    def _parse_for(self) -> ast.Stmt:
        tok = self._expect_keyword("for")
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_op(";"):
            if self._at_type():
                init = self._parse_local_decl()
            else:
                init = self._parse_simple_statement()
        self._expect_op(";")
        cond: Optional[ast.Expr] = None
        if not self._peek().is_op(";"):
            cond = self.parse_expression()
        self._expect_op(";")
        update: Optional[ast.Stmt] = None
        if not self._peek().is_op(")"):
            update = self._parse_simple_statement()
        self._expect_op(")")
        body = self._as_block(self.parse_statement())
        stmt = ast.For(init, cond, update, body)
        stmt.loc = tok.loc
        return stmt

    def _as_block(self, stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        block = ast.Block([stmt])
        block.loc = stmt.loc
        return block

    def _parse_simple_statement(self) -> ast.Stmt:
        """Parse an assignment, increment/decrement, or expression statement."""
        loc = self._peek().loc
        expr = self.parse_expression()
        tok = self._peek()
        if tok.is_op("="):
            self._advance()
            rvalue = self.parse_expression()
            stmt: ast.Stmt = ast.Assign(expr, rvalue)
        elif tok.kind == "op" and tok.text in _COMPOUND_ASSIGN_OPS:
            self._advance()
            rvalue = self.parse_expression()
            binop = ast.BinaryOp(_COMPOUND_ASSIGN_OPS[tok.text], expr, rvalue)
            binop.loc = loc
            stmt = ast.Assign(_clone_expr(expr), binop)
        elif tok.is_op("++") or tok.is_op("--"):
            self._advance()
            one = ast.IntLiteral(1)
            one.loc = loc
            binop = ast.BinaryOp("+" if tok.text == "++" else "-", expr, one)
            binop.loc = loc
            stmt = ast.Assign(_clone_expr(expr), binop)
        else:
            stmt = ast.ExprStmt(expr)
        stmt.loc = loc
        return stmt

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Parse an expression (entry point: the ternary level)."""
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._peek().is_op("?"):
            loc = self._advance().loc
            then = self.parse_expression()
            self._expect_op(":")
            otherwise = self._parse_ternary()
            node = ast.Ternary(cond, then, otherwise)
            node.loc = loc
            return node
        return cond

    _BINARY_LEVELS: list[list[str]] = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_cast()
        ops = self._BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind == "op" and self._peek().text in ops:
            tok = self._advance()
            right = self._parse_binary(level + 1)
            node = ast.BinaryOp(tok.text, left, right)
            node.loc = tok.loc
            left = node
        return left

    def _parse_cast(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_op("(") and self._at_type(1):
            self._advance()
            ctype, _quals = self._parse_type()
            self._expect_op(")")
            operand = self._parse_cast()
            node = ast.Cast(ctype, operand)
            node.loc = tok.loc
            return node
        return self._parse_unary()

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~"):
            self._advance()
            operand = self._parse_cast()
            node: ast.Expr = ast.UnaryOp(tok.text, operand)
            node.loc = tok.loc
            return node
        if tok.is_op("*"):
            self._advance()
            operand = self._parse_cast()
            node = ast.Deref(operand)
            node.loc = tok.loc
            return node
        if tok.is_op("&"):
            self._advance()
            operand = self._parse_cast()
            node = ast.AddressOf(operand)
            node.loc = tok.loc
            return node
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_op("["):
                self._advance()
                index = self.parse_expression()
                self._expect_op("]")
                node: ast.Expr = ast.Index(expr, index)
            elif tok.is_op("."):
                self._advance()
                field = self._expect_ident()
                node = ast.Member(expr, field.text, arrow=False)
            elif tok.is_op("->"):
                self._advance()
                field = self._expect_ident()
                node = ast.Member(expr, field.text, arrow=True)
            elif tok.is_op("(") and isinstance(expr, ast.Identifier):
                self._advance()
                args: list[ast.Expr] = []
                if not self._peek().is_op(")"):
                    args.append(self.parse_expression())
                    while self._accept_op(","):
                        args.append(self.parse_expression())
                self._expect_op(")")
                node = ast.Call(expr.name, args)
            else:
                return expr
            node.loc = tok.loc
            expr = node

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "int" or tok.kind == "char":
            self._advance()
            node: ast.Expr = ast.IntLiteral(tok.value)
        elif tok.kind == "string":
            self._advance()
            node = ast.StringLiteral(tok.text)
        elif tok.is_keyword("true"):
            self._advance()
            node = ast.IntLiteral(1)
        elif tok.is_keyword("false") or tok.is_keyword("NULL"):
            self._advance()
            node = ast.IntLiteral(0)
        elif tok.is_keyword("sizeof"):
            self._advance()
            self._expect_op("(")
            if self._at_type():
                ctype, _quals = self._parse_type()
                ctype = self._parse_array_suffix(ctype)
                node = ast.SizeOf(ctype)
            else:
                # ``sizeof(expr)`` is resolved by the type checker.
                inner = self.parse_expression()
                node = ast.SizeOf(ty.VOID)
                node._sizeof_expr = inner  # type: ignore[attr-defined]
            self._expect_op(")")
        elif tok.kind == "ident":
            self._advance()
            node = ast.Identifier(tok.text)
        elif tok.is_op("("):
            self._advance()
            node = self.parse_expression()
            self._expect_op(")")
            return node
        else:
            raise ParseError(f"unexpected token {tok.text!r}", tok.loc)
        node.loc = tok.loc
        return node


def _clone_expr(expr: ast.Expr) -> ast.Expr:
    """Deep-copy an expression (used when desugaring compound assignments)."""
    from repro.cminor.visitor import clone_expression

    return clone_expression(expr)


def parse_program(source: str, unit_name: str = "<string>",
                  structs: Optional[StructTable] = None) -> TranslationUnit:
    """Parse CMinor source text into a translation unit."""
    return Parser(tokenize(source, unit_name), unit_name, structs).parse_unit()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (convenience helper for tests and tools)."""
    return Parser(tokenize(source)).parse_expression()


def parse_statement(source: str) -> ast.Stmt:
    """Parse a single statement (convenience helper for tests and tools)."""
    return Parser(tokenize(source)).parse_statement()
