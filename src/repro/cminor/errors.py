"""Error types raised by the CMinor front end.

All front-end errors carry an optional :class:`SourceLocation` so that the
toolchain can report file/line/column information, and so the CCured stage
can embed (or strip) source locations in run-time error messages exactly as
the paper's toolchain does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a CMinor source file.

    Attributes:
        filename: Name of the source unit (a component name for generated
            code, a file name for hand-written code).
        line: 1-based line number.
        column: 1-based column number.
    """

    filename: str = "<unknown>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class CMinorError(Exception):
    """Base class for all CMinor front-end errors."""

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc
        if loc is not None:
            message = f"{loc}: {message}"
        super().__init__(message)


class LexError(CMinorError):
    """Raised when the lexer encounters an invalid character or token."""


class ParseError(CMinorError):
    """Raised when the parser encounters a syntax error."""


class TypeCheckError(CMinorError):
    """Raised when the type checker rejects a program."""


class LinkError(CMinorError):
    """Raised when translation units cannot be linked into a whole program."""
