"""CMinor: the C-subset source language used throughout the toolchain.

CMinor plays the role that C (as emitted by the nesC compiler and consumed
by CIL/CCured/cXprop/GCC) plays in the paper.  It is a statically typed
subset of C with:

* fixed-width integer types (``int8_t`` .. ``uint32_t``), ``bool``, ``char``,
  ``void``,
* pointers, fixed-size arrays, and ``struct`` types,
* functions, global and local variables, string literals,
* the TinyOS-specific statement forms the toolchain reasons about:
  ``atomic { ... }`` blocks and ``post task();`` statements,
* qualifiers relevant to the paper: ``const``, ``volatile``, ``norace``,
  and ``__progmem`` (flash-resident data).

The package provides a lexer, a recursive-descent parser, a type checker,
a control-flow graph builder, a CIL-style simplifier, and a pretty-printer
that turns transformed programs back into CMinor source.
"""

from repro.cminor.errors import CMinorError, LexError, ParseError, TypeCheckError
from repro.cminor.lexer import Lexer, Token, tokenize
from repro.cminor.parser import Parser, parse_program, parse_expression, parse_statement
from repro.cminor.program import Program, link_units
from repro.cminor.typecheck import TypeChecker, check_program
from repro.cminor.pretty import PrettyPrinter, to_source

__all__ = [
    "CMinorError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "Lexer",
    "Token",
    "tokenize",
    "Parser",
    "parse_program",
    "parse_expression",
    "parse_statement",
    "Program",
    "link_units",
    "TypeChecker",
    "check_program",
    "PrettyPrinter",
    "to_source",
]
