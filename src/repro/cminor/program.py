"""Translation units, whole programs, and linking.

The Safe TinyOS toolchain is a *whole-program* toolchain: the nesC compiler
flattens a component graph into one C file, and every later stage (CCured,
cXprop, the inliner, the backend) operates on that single program.  The
:class:`Program` class is that single artifact.  A program also carries the
TinyOS-specific metadata the paper's tools rely on:

* the list of task functions and interrupt vectors (the two-level
  concurrency model),
* the list of variables the nesC compiler reports as accessed
  non-atomically (used by the modified CCured to lock safety checks),
* the set of builtin environment functions (hardware access, sleep,
  interrupt control) that the simulator implements natively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.cminor import ast_nodes as ast
from repro.cminor import typesys as ty
from repro.cminor.errors import LinkError, SourceLocation, TypeCheckError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cminor.analysis_cache import ProgramAnalysisCache


class StructTable:
    """Registry of struct definitions shared by units that are linked together."""

    def __init__(self) -> None:
        self._structs: dict[str, ty.StructType] = {}

    def define(self, name: str, fields: list[ty.StructField],
               loc: Optional[SourceLocation] = None) -> ty.StructType:
        """Define (or re-define identically) a struct type."""
        struct = ty.StructType(name, tuple(fields))
        existing = self._structs.get(name)
        if existing is not None and existing != struct:
            raise TypeCheckError(f"conflicting definitions of struct {name}", loc)
        self._structs[name] = struct
        return struct

    def lookup(self, name: str, loc: Optional[SourceLocation] = None) -> ty.StructType:
        """Look up a struct by tag, creating a forward declaration if needed."""
        if name not in self._structs:
            # Forward reference: struct used (e.g. behind a pointer) before its
            # definition.  Record an empty placeholder; ``define`` fills it in.
            self._structs[name] = ty.StructType(name, tuple())
        return self._structs[name]

    def get(self, name: str) -> Optional[ty.StructType]:
        return self._structs.get(name)

    def names(self) -> list[str]:
        return sorted(self._structs)

    def all(self) -> dict[str, ty.StructType]:
        return dict(self._structs)

    def merge(self, other: "StructTable") -> None:
        for name, struct in other._structs.items():
            existing = self._structs.get(name)
            if existing is None or not existing.fields:
                self._structs[name] = struct
            elif struct.fields and existing != struct:
                raise LinkError(f"conflicting definitions of struct {name}")


@dataclass
class TranslationUnit:
    """A single parsed CMinor source unit (one component's generated code)."""

    name: str
    structs: StructTable = field(default_factory=StructTable)
    globals: list[ast.GlobalVar] = field(default_factory=list)
    functions: list[ast.FunctionDef] = field(default_factory=list)


def _builtin(name: str, return_type: ty.CType, params: tuple[ty.CType, ...],
             cycles: int) -> ast.ExternFunction:
    return ast.ExternFunction(name, return_type, params, cycles=cycles)


def standard_builtins() -> dict[str, ast.ExternFunction]:
    """The environment functions every Safe TinyOS program may call.

    These correspond to the inline-assembly / compiler-intrinsic layer of the
    real TinyOS: memory-mapped hardware access (created by the
    hardware-register refactoring step of the pipeline), the sleep
    instruction, and global interrupt control.
    """
    u8, u16 = ty.UINT8, ty.UINT16
    builtins = [
        _builtin("__hw_read8", u8, (u16,), cycles=2),
        _builtin("__hw_write8", ty.VOID, (u16, u8), cycles=2),
        _builtin("__hw_read16", u16, (u16,), cycles=4),
        _builtin("__hw_write16", ty.VOID, (u16, u16), cycles=4),
        _builtin("__sleep", ty.VOID, (), cycles=1),
        _builtin("__enable_interrupts", ty.VOID, (), cycles=1),
        _builtin("__disable_interrupts", ty.VOID, (), cycles=1),
        _builtin("__irq_save", u8, (), cycles=3),
        _builtin("__irq_restore", ty.VOID, (u8,), cycles=3),
        _builtin("__halt", ty.VOID, (u16,), cycles=1),
        # Support routines for the CCured runtime library: pointer metadata
        # queries (evaluated natively by the simulator, reasoned about
        # abstractly by cXprop) and the failure reporting channel.
        _builtin("__bounds_ok", ty.BOOL, (ty.PointerType(ty.VOID), u16), cycles=8),
        _builtin("__align_ok", ty.BOOL, (ty.PointerType(ty.VOID), u16), cycles=4),
        _builtin("__error_report", ty.VOID, (ty.PointerType(ty.CHAR),), cycles=16),
        _builtin("__error_report_id", ty.VOID, (u16,), cycles=8),
    ]
    return {b.name: b for b in builtins}


@dataclass
class Program:
    """A linked, whole CMinor program plus its TinyOS metadata.

    Attributes:
        name: Application name (e.g. ``"Surge"``).
        platform: Target platform name (``"mica2"`` or ``"telosb"``).
        structs: Struct definitions.
        globals: Global variables by name (insertion ordered).
        functions: Function definitions by name (insertion ordered).
        builtins: Environment (extern) functions by name.
        entry: Name of the entry-point function (``"main"``).
        tasks: Ordered names of task functions known to the scheduler.
        interrupt_vectors: Mapping from vector name to handler function name.
        racy_variables: Names of globals the nesC concurrency analysis found
            to be accessed non-atomically (the list the paper's modified
            CCured consumes).
        norace_suppressed: Names of globals whose ``norace`` qualifier was
            suppressed by the toolchain (Section 2.2).
    """

    name: str = "program"
    platform: str = "mica2"
    structs: StructTable = field(default_factory=StructTable)
    globals: dict[str, ast.GlobalVar] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    builtins: dict[str, ast.ExternFunction] = field(default_factory=standard_builtins)
    entry: str = "main"
    tasks: list[str] = field(default_factory=list)
    interrupt_vectors: dict[str, str] = field(default_factory=dict)
    racy_variables: set[str] = field(default_factory=set)
    norace_suppressed: set[str] = field(default_factory=set)

    # -- construction ---------------------------------------------------------

    def add_global(self, var: ast.GlobalVar, replace: bool = False) -> None:
        if not replace and var.name in self.globals:
            raise LinkError(f"duplicate global variable {var.name!r}")
        if var.name in self.functions or var.name in self.builtins:
            raise LinkError(f"{var.name!r} is already defined as a function")
        self.globals[var.name] = var

    def add_function(self, func: ast.FunctionDef, replace: bool = False) -> None:
        if not replace and func.name in self.functions:
            raise LinkError(f"duplicate function {func.name!r}")
        if func.name in self.globals:
            raise LinkError(f"{func.name!r} is already defined as a variable")
        self.functions[func.name] = func

    def remove_function(self, name: str) -> None:
        self.functions.pop(name, None)

    def remove_global(self, name: str) -> None:
        self.globals.pop(name, None)

    # -- queries --------------------------------------------------------------

    def lookup_function(self, name: str) -> Optional[ast.FunctionDef]:
        return self.functions.get(name)

    def lookup_global(self, name: str) -> Optional[ast.GlobalVar]:
        return self.globals.get(name)

    def lookup_builtin(self, name: str) -> Optional[ast.ExternFunction]:
        return self.builtins.get(name)

    def has_symbol(self, name: str) -> bool:
        return (name in self.globals or name in self.functions
                or name in self.builtins)

    def iter_functions(self) -> Iterator[ast.FunctionDef]:
        return iter(list(self.functions.values()))

    def iter_globals(self) -> Iterator[ast.GlobalVar]:
        return iter(list(self.globals.values()))

    def root_functions(self) -> list[str]:
        """Functions that are externally reachable.

        These are the roots for call-graph reachability: the entry point,
        every interrupt handler, every scheduler task, and anything marked
        ``spontaneous``.
        """
        roots: list[str] = []
        if self.entry in self.functions:
            roots.append(self.entry)
        roots.extend(h for h in self.interrupt_vectors.values() if h in self.functions)
        roots.extend(t for t in self.tasks if t in self.functions)
        for func in self.functions.values():
            if func.is_spontaneous and func.name not in roots:
                roots.append(func.name)
        return roots

    def interrupt_handlers(self) -> list[str]:
        return [h for h in self.interrupt_vectors.values() if h in self.functions]

    def clone(self) -> "Program":
        """Deep-copy the program so a pipeline variant can transform it freely.

        Uses the fast structural cloner (:mod:`repro.cminor.clone`): immutable
        leaves (types, source locations) are shared, every container and AST
        node is copied, and the clone starts with an empty analysis cache.
        This is what lets the sweep runner share one front-end program per
        application across many build variants.
        """
        from repro.cminor.clone import clone_program

        return clone_program(self)

    # -- derived-analysis cache ------------------------------------------------

    def analysis(self) -> "ProgramAnalysisCache":
        """The program-level cache of derived per-function analyses.

        Shared by the simulator and the cXprop analyses; see
        :mod:`repro.cminor.analysis_cache`.  Passes that mutate function
        bodies must call :meth:`invalidate_analysis` when done.
        """
        cache = self.__dict__.get("_analysis_cache")
        if cache is None:
            from repro.cminor.analysis_cache import ProgramAnalysisCache

            cache = ProgramAnalysisCache(self)
            self.__dict__["_analysis_cache"] = cache
        return cache

    def invalidate_analysis(self, func_name: Optional[str] = None) -> None:
        """Drop cached derived analyses after mutating the AST."""
        cache = self.__dict__.get("_analysis_cache")
        if cache is not None:
            cache.invalidate(func_name)

    def summary(self) -> dict[str, int]:
        """Coarse size statistics used by reports and tests."""
        from repro.cminor.visitor import count_statements

        return {
            "functions": len(self.functions),
            "globals": len(self.globals),
            "tasks": len(self.tasks),
            "interrupt_vectors": len(self.interrupt_vectors),
            "statements": sum(count_statements(f.body) for f in self.functions.values()),
        }


def link_units(units: Iterable[TranslationUnit], name: str = "program",
               platform: str = "mica2") -> Program:
    """Link translation units into a whole program.

    Duplicate function or global definitions across units are link errors,
    matching the behaviour of linking the nesC compiler's output.
    """
    program = Program(name=name, platform=platform)
    for unit in units:
        program.structs.merge(unit.structs)
        for var in unit.globals:
            program.add_global(var)
        for func in unit.functions:
            program.add_function(func)
    return program
