"""Fast structural cloning of CMinor programs.

``Program.clone()`` is on the hot path of the batched sweep runner: one
front-end program per application is cloned once per build variant, so the
clone has to be much cheaper than re-running the nesC front end.  A generic
``copy.deepcopy`` spends most of its time memoizing and re-creating objects
that are immutable by construction — ``CType`` instances, ``SourceLocation``
records, qualifier frozensets — so this module clones the AST structurally
instead, sharing everything immutable:

* types (``repro.cminor.typesys`` dataclasses are frozen) and source
  locations are shared by reference;
* expression and statement nodes are rebuilt per kind, giving every cloned
  statement a fresh ``node_id`` (the clone gets its own, empty
  analysis cache, so shared node ids would not be wrong — fresh ids simply
  keep the invariant that no two live statements alias an id);
* containers (struct table, globals/functions dicts, task lists, vector and
  racy-variable sets) are shallow-copied per program.

The cloned program is semantically identical to the original: building both
through the same pass list must produce byte-identical images
(``tests/cminor/test_clone.py`` enforces this).
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Callable, Optional

from repro.cminor import ast_nodes as ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.cminor.program import Program


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def clone_expr(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
    """Structurally clone an expression subtree (types/locations shared)."""
    if expr is None:
        return None
    cloner = _EXPR_CLONERS.get(type(expr))
    if cloner is None:
        # Unknown expression kind (e.g. added by a future pass): fall back
        # to deepcopy rather than producing a silently shallow clone.
        return copy.deepcopy(expr)
    cloned = cloner(expr)
    cloned.ctype = expr.ctype
    cloned.loc = expr.loc
    return cloned


def _clone_exprs(exprs: list[ast.Expr]) -> list[ast.Expr]:
    return [clone_expr(e) for e in exprs]


_EXPR_CLONERS: dict[type, Callable[[ast.Expr], ast.Expr]] = {
    ast.IntLiteral: lambda e: ast.IntLiteral(e.value),
    ast.StringLiteral: lambda e: ast.StringLiteral(e.value, e.in_rom, e.label),
    ast.Identifier: lambda e: ast.Identifier(e.name),
    ast.BinaryOp: lambda e: ast.BinaryOp(e.op, clone_expr(e.left),
                                         clone_expr(e.right)),
    ast.UnaryOp: lambda e: ast.UnaryOp(e.op, clone_expr(e.operand)),
    ast.Deref: lambda e: ast.Deref(clone_expr(e.pointer)),
    ast.AddressOf: lambda e: ast.AddressOf(clone_expr(e.lvalue)),
    ast.Index: lambda e: ast.Index(clone_expr(e.base), clone_expr(e.index)),
    ast.Member: lambda e: ast.Member(clone_expr(e.base), e.fieldname, e.arrow),
    ast.Call: lambda e: ast.Call(e.callee, _clone_exprs(e.args)),
    ast.Cast: lambda e: ast.Cast(e.target_type, clone_expr(e.operand)),
    ast.SizeOf: lambda e: ast.SizeOf(e.of_type),
    ast.Ternary: lambda e: ast.Ternary(clone_expr(e.cond), clone_expr(e.then),
                                       clone_expr(e.otherwise)),
    ast.InitList: lambda e: ast.InitList(_clone_exprs(e.items)),
}


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def clone_stmt(stmt: Optional[ast.Stmt]) -> Optional[ast.Stmt]:
    """Structurally clone a statement subtree with fresh node ids."""
    if stmt is None:
        return None
    cloner = _STMT_CLONERS.get(type(stmt))
    if cloner is None:
        # Unknown statement kind: deepcopy, then restore the fresh-node-id
        # guarantee (deepcopy duplicates node_id, which would alias the
        # original in node_id-keyed caches and dataflow state).
        from repro.cminor.visitor import walk_statements_single

        cloned = copy.deepcopy(stmt)
        for inner in walk_statements_single(cloned):
            inner.node_id = ast._next_node_id()
        return cloned
    cloned = cloner(stmt)
    cloned.loc = stmt.loc
    return cloned


def clone_block(block: ast.Block) -> ast.Block:
    cloned = ast.Block([clone_stmt(s) for s in block.stmts])
    cloned.loc = block.loc
    return cloned


def _clone_atomic(stmt: ast.Atomic) -> ast.Atomic:
    return ast.Atomic(clone_block(stmt.body), stmt.save_irq, stmt.synthetic)


_STMT_CLONERS: dict[type, Callable[[ast.Stmt], ast.Stmt]] = {
    ast.VarDecl: lambda s: ast.VarDecl(s.name, s.ctype, clone_expr(s.init),
                                       s.qualifiers),
    ast.Assign: lambda s: ast.Assign(clone_expr(s.lvalue), clone_expr(s.rvalue)),
    ast.ExprStmt: lambda s: ast.ExprStmt(clone_expr(s.expr)),
    ast.Block: clone_block,
    ast.If: lambda s: ast.If(clone_expr(s.cond), clone_block(s.then_body),
                             clone_block(s.else_body)
                             if s.else_body is not None else None),
    ast.While: lambda s: ast.While(clone_expr(s.cond), clone_block(s.body)),
    ast.DoWhile: lambda s: ast.DoWhile(clone_block(s.body), clone_expr(s.cond)),
    ast.For: lambda s: ast.For(clone_stmt(s.init), clone_expr(s.cond),
                               clone_stmt(s.update), clone_block(s.body)),
    ast.Return: lambda s: ast.Return(clone_expr(s.value)),
    ast.Break: lambda s: ast.Break(),
    ast.Continue: lambda s: ast.Continue(),
    ast.Atomic: _clone_atomic,
    ast.Post: lambda s: ast.Post(s.task),
    ast.Nop: lambda s: ast.Nop(),
}


# ---------------------------------------------------------------------------
# Declarations and whole programs
# ---------------------------------------------------------------------------


def clone_global(var: ast.GlobalVar) -> ast.GlobalVar:
    return ast.GlobalVar(var.name, var.ctype, clone_expr(var.init),
                         var.qualifiers, var.origin, var.loc)


def clone_function(func: ast.FunctionDef) -> ast.FunctionDef:
    return ast.FunctionDef(
        name=func.name,
        return_type=func.return_type,
        params=[ast.Param(p.name, p.ctype) for p in func.params],
        body=clone_block(func.body),
        attributes=dict(func.attributes),
        origin=func.origin,
        loc=func.loc,
    )


def clone_program(program: "Program") -> "Program":
    """Deep-copy a whole program, sharing its immutable leaves.

    The clone owns its own struct table, symbol dicts, metadata containers
    and (lazily created) analysis cache; mutating the clone can never be
    observed through the original, and vice versa.
    """
    from repro.cminor.program import Program, StructTable

    structs = StructTable()
    structs._structs = dict(program.structs._structs)

    cloned = Program(
        name=program.name,
        platform=program.platform,
        structs=structs,
        globals={name: clone_global(var)
                 for name, var in program.globals.items()},
        functions={name: clone_function(func)
                   for name, func in program.functions.items()},
        builtins={name: copy.copy(b) for name, b in program.builtins.items()},
        entry=program.entry,
        tasks=list(program.tasks),
        interrupt_vectors=dict(program.interrupt_vectors),
        racy_variables=set(program.racy_variables),
        norace_suppressed=set(program.norace_suppressed),
    )
    return cloned
