"""Hand-written lexer for CMinor source text.

The token stream feeds the recursive-descent parser in
:mod:`repro.cminor.parser`.  The lexer tracks line and column numbers so
that the CCured stage can build source-location strings for its run-time
error messages (and so the "strip source locations" pipeline step has
something real to strip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cminor.errors import LexError, SourceLocation

KEYWORDS = {
    "void",
    "bool",
    "char",
    "int",
    "unsigned",
    "int8_t",
    "uint8_t",
    "int16_t",
    "uint16_t",
    "int32_t",
    "uint32_t",
    "struct",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "sizeof",
    "atomic",
    "post",
    "const",
    "volatile",
    "norace",
    "__progmem",
    "__interrupt",
    "__spontaneous",
    "__inline",
    "true",
    "false",
    "NULL",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: One of ``"ident"``, ``"keyword"``, ``"int"``, ``"string"``,
            ``"char"``, ``"op"``, or ``"eof"``.
        text: The literal source text (decoded value for strings).
        value: Numeric value for ``int`` and ``char`` tokens.
        loc: Source location of the first character of the token.
    """

    kind: str
    text: str
    loc: SourceLocation
    value: int = 0

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op

    def is_keyword(self, kw: str) -> bool:
        return self.kind == "keyword" and self.text == kw

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


class Lexer:
    """Converts CMinor source text into a list of :class:`Token` objects."""

    def __init__(self, source: str, filename: str = "<string>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start)
            else:
                return

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start : self.pos]
            value = int(text, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            text = self.source[start : self.pos]
            value = int(text, 10)
        # Accept (and ignore) C-style integer suffixes.
        while self._peek() in "uUlL" and self._peek():
            text += self._advance()
        return Token("int", text, loc, value)

    def _lex_identifier(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start : self.pos]
        if text in KEYWORDS:
            return Token("keyword", text, loc)
        return Token("ident", text, loc)

    def _lex_string(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", loc)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._advance()
                chars.append(_ESCAPES.get(esc, esc))
            else:
                chars.append(self._advance())
        return Token("string", "".join(chars), loc)

    def _lex_char(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            esc = self._advance()
            value = ord(_ESCAPES.get(esc, esc))
        else:
            value = ord(self._advance())
        if not self._peek() == "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        return Token("char", chr(value), loc, value)

    def _lex_operator(self) -> Token:
        loc = self._loc()
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, loc)
        raise LexError(f"unexpected character {self._peek()!r}", loc)

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until end of input, finishing with an ``eof`` token."""
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token("eof", "", self._loc())
                return
            ch = self._peek()
            if ch.isdigit():
                yield self._lex_number()
            elif ch.isalpha() or ch == "_":
                yield self._lex_identifier()
            elif ch == '"':
                yield self._lex_string()
            elif ch == "'":
                yield self._lex_char()
            else:
                yield self._lex_operator()


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Tokenize ``source`` and return the full token list (including EOF)."""
    return list(Lexer(source, filename).tokens())
