"""CIL-style program normalization.

CCured and cXprop both operate on CIL, which normalizes C's control flow
before any analysis runs.  The simplifier performs the equivalent
normalization for CMinor so that every downstream pass sees a single loop
form and fully materialized conditions:

* ``for`` and ``do``/``while`` loops become ``while (1)`` loops with explicit
  ``if (!cond) break;`` statements, so loop conditions are ordinary
  statements that checks can be inserted in front of;
* single-statement ``if``/loop bodies are already blocks (the parser
  guarantees that);
* empty blocks and ``Nop`` statements left behind by other passes are
  dropped.

The simplifier runs once, right after the nesC flattening step, on both the
safe and the unsafe build variants so that size comparisons are fair.
"""

from __future__ import annotations

from repro.cminor import ast_nodes as ast
from repro.cminor.program import Program
from repro.cminor.visitor import StmtRewrite, transform_block


def simplify_program(program: Program) -> Program:
    """Normalize every function of ``program`` in place and return it."""
    for func in program.iter_functions():
        simplify_function(func)
    program.invalidate_analysis()
    return program


def simplify_function(func: ast.FunctionDef) -> None:
    """Normalize one function in place."""
    transform_block(func.body, _rewrite_statement)


def _rewrite_statement(stmt: ast.Stmt) -> StmtRewrite:
    if isinstance(stmt, ast.Nop):
        return None
    if isinstance(stmt, ast.Block) and not stmt.stmts:
        return None
    if isinstance(stmt, ast.For):
        return _rewrite_for(stmt)
    if isinstance(stmt, ast.DoWhile):
        return _rewrite_do_while(stmt)
    if isinstance(stmt, ast.While):
        return _rewrite_while(stmt)
    return stmt


def _negate(cond: ast.Expr) -> ast.Expr:
    negated = ast.UnaryOp("!", cond)
    negated.loc = cond.loc
    negated.ctype = None
    return negated


def _is_constant_true(cond: ast.Expr) -> bool:
    return isinstance(cond, ast.IntLiteral) and cond.value != 0


def _make_guard(cond: ast.Expr) -> ast.Stmt:
    """Build ``if (!cond) break;`` for a loop condition."""
    break_stmt = ast.Break()
    break_stmt.loc = cond.loc
    guard = ast.If(_negate(cond), ast.Block([break_stmt]), None)
    guard.loc = cond.loc
    return guard


def _infinite_loop(body: ast.Block, loc) -> ast.While:
    one = ast.IntLiteral(1)
    one.loc = loc
    loop = ast.While(one, body)
    loop.loc = loc
    return loop


def _rewrite_while(stmt: ast.While) -> StmtRewrite:
    if _is_constant_true(stmt.cond):
        return stmt
    body_stmts: list[ast.Stmt] = [_make_guard(stmt.cond)]
    body_stmts.extend(stmt.body.stmts)
    return _infinite_loop(ast.Block(body_stmts), stmt.loc)


def _rewrite_do_while(stmt: ast.DoWhile) -> StmtRewrite:
    body_stmts: list[ast.Stmt] = list(stmt.body.stmts)
    body_stmts.append(_make_guard(stmt.cond))
    return _infinite_loop(ast.Block(body_stmts), stmt.loc)


def _rewrite_for(stmt: ast.For) -> StmtRewrite:
    """Rewrite ``for (init; cond; update) body``.

    ``continue`` statements inside the body must still execute ``update``, so
    the update statement is appended to the body *and* the body's ``continue``
    statements are rewritten to jump to it.  CMinor has no ``goto``, so the
    rewrite duplicates the update in front of each ``continue`` — the same
    strategy CIL uses when it cannot introduce labels.
    """
    result: list[ast.Stmt] = []
    if stmt.init is not None:
        result.append(stmt.init)
    body_stmts: list[ast.Stmt] = []
    if stmt.cond is not None and not _is_constant_true(stmt.cond):
        body_stmts.append(_make_guard(stmt.cond))
    inner = ast.Block(list(stmt.body.stmts))
    if stmt.update is not None:
        _prepend_update_to_continues(inner, stmt.update)
    body_stmts.extend(inner.stmts)
    if stmt.update is not None:
        body_stmts.append(stmt.update)
    result.append(_infinite_loop(ast.Block(body_stmts), stmt.loc))
    return result


def _prepend_update_to_continues(block: ast.Block, update: ast.Stmt) -> None:
    """Insert a copy of ``update`` before each ``continue`` in ``block``.

    The traversal does not descend into nested loops, whose ``continue``
    statements refer to the inner loop.
    """
    from repro.cminor.visitor import clone_statement

    def rewrite(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ast.Continue):
                out.append(clone_statement(update))
                out.append(stmt)
            elif isinstance(stmt, ast.If):
                stmt.then_body.stmts = rewrite(stmt.then_body.stmts)
                if stmt.else_body is not None:
                    stmt.else_body.stmts = rewrite(stmt.else_body.stmts)
                out.append(stmt)
            elif isinstance(stmt, ast.Block):
                stmt.stmts = rewrite(stmt.stmts)
                out.append(stmt)
            elif isinstance(stmt, ast.Atomic):
                stmt.body.stmts = rewrite(stmt.body.stmts)
                out.append(stmt)
            else:
                # while / do-while / for introduce a new loop scope; leave them.
                out.append(stmt)
        return out

    block.stmts = rewrite(block.stmts)
