"""Traversal and rewriting helpers shared by every pass in the toolchain.

Passes in CCured and cXprop are all structured the same way: walk statements,
inspect or rewrite the expressions they contain, and occasionally replace a
statement with zero or more new statements.  The helpers here keep that logic
in one place so that individual passes stay small and declarative.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Union

from repro.cminor import ast_nodes as ast

StmtRewrite = Union[ast.Stmt, list[ast.Stmt], None]


# ---------------------------------------------------------------------------
# Expression traversal
# ---------------------------------------------------------------------------


def child_expressions(expr: ast.Expr) -> list[ast.Expr]:
    """Immediate sub-expressions of ``expr`` (non-recursive)."""
    if isinstance(expr, ast.BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.Deref):
        return [expr.pointer]
    if isinstance(expr, ast.AddressOf):
        return [expr.lvalue]
    if isinstance(expr, ast.Index):
        return [expr.base, expr.index]
    if isinstance(expr, ast.Member):
        return [expr.base]
    if isinstance(expr, ast.Call):
        return list(expr.args)
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.then, expr.otherwise]
    if isinstance(expr, ast.InitList):
        return list(expr.items)
    return []


def walk_expression(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    for child in child_expressions(expr):
        yield from walk_expression(child)


def map_expression(expr: ast.Expr, fn: Callable[[ast.Expr], ast.Expr]) -> ast.Expr:
    """Rewrite an expression bottom-up.

    ``fn`` is applied to every node after its children have been rewritten;
    it must return the (possibly replaced) node.
    """
    if isinstance(expr, ast.BinaryOp):
        expr.left = map_expression(expr.left, fn)
        expr.right = map_expression(expr.right, fn)
    elif isinstance(expr, ast.UnaryOp):
        expr.operand = map_expression(expr.operand, fn)
    elif isinstance(expr, ast.Deref):
        expr.pointer = map_expression(expr.pointer, fn)
    elif isinstance(expr, ast.AddressOf):
        expr.lvalue = map_expression(expr.lvalue, fn)
    elif isinstance(expr, ast.Index):
        expr.base = map_expression(expr.base, fn)
        expr.index = map_expression(expr.index, fn)
    elif isinstance(expr, ast.Member):
        expr.base = map_expression(expr.base, fn)
    elif isinstance(expr, ast.Call):
        expr.args = [map_expression(a, fn) for a in expr.args]
    elif isinstance(expr, ast.Cast):
        expr.operand = map_expression(expr.operand, fn)
    elif isinstance(expr, ast.Ternary):
        expr.cond = map_expression(expr.cond, fn)
        expr.then = map_expression(expr.then, fn)
        expr.otherwise = map_expression(expr.otherwise, fn)
    elif isinstance(expr, ast.InitList):
        expr.items = [map_expression(i, fn) for i in expr.items]
    return fn(expr)


def clone_expression(expr: ast.Expr) -> ast.Expr:
    """Deep-copy an expression subtree (types/locations shared by reference)."""
    from repro.cminor.clone import clone_expr

    return clone_expr(expr)


def clone_statement(stmt: ast.Stmt) -> ast.Stmt:
    """Deep-copy a statement subtree (fresh node identities)."""
    from repro.cminor.clone import clone_stmt

    return clone_stmt(stmt)


def clone_block(block: ast.Block) -> ast.Block:
    """Deep-copy a block."""
    from repro.cminor.clone import clone_block as _clone_block

    return _clone_block(block)


# ---------------------------------------------------------------------------
# Statement traversal
# ---------------------------------------------------------------------------


def child_blocks(stmt: ast.Stmt) -> list[ast.Block]:
    """The blocks nested directly inside a statement."""
    if isinstance(stmt, ast.Block):
        return [stmt]
    if isinstance(stmt, ast.If):
        blocks = [stmt.then_body]
        if stmt.else_body is not None:
            blocks.append(stmt.else_body)
        return blocks
    if isinstance(stmt, (ast.While, ast.DoWhile, ast.Atomic)):
        return [stmt.body]
    if isinstance(stmt, ast.For):
        return [stmt.body]
    return []


def statement_expressions(stmt: ast.Stmt) -> list[ast.Expr]:
    """The top-level expressions contained directly in a statement.

    Does not descend into nested statements; combine with
    :func:`walk_statements` to see every expression in a function.
    """
    if isinstance(stmt, ast.VarDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, ast.Assign):
        return [stmt.lvalue, stmt.rvalue]
    if isinstance(stmt, ast.ExprStmt):
        return [stmt.expr]
    if isinstance(stmt, ast.If):
        return [stmt.cond]
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        return [stmt.cond]
    if isinstance(stmt, ast.For):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    return []


def replace_statement_expressions(stmt: ast.Stmt,
                                  fn: Callable[[ast.Expr], ast.Expr]) -> None:
    """Apply ``fn`` (bottom-up) to each top-level expression of ``stmt``."""
    if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
        stmt.init = map_expression(stmt.init, fn)
    elif isinstance(stmt, ast.Assign):
        stmt.lvalue = map_expression(stmt.lvalue, fn)
        stmt.rvalue = map_expression(stmt.rvalue, fn)
    elif isinstance(stmt, ast.ExprStmt):
        stmt.expr = map_expression(stmt.expr, fn)
    elif isinstance(stmt, ast.If):
        stmt.cond = map_expression(stmt.cond, fn)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        stmt.cond = map_expression(stmt.cond, fn)
    elif isinstance(stmt, ast.For) and stmt.cond is not None:
        stmt.cond = map_expression(stmt.cond, fn)
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        stmt.value = map_expression(stmt.value, fn)


def walk_statements(block: ast.Block) -> Iterator[ast.Stmt]:
    """Yield every statement nested anywhere inside ``block``, pre-order.

    ``For`` loops yield their ``init`` and ``update`` statements as well.
    """
    for stmt in block.stmts:
        yield from walk_statements_single(stmt)


def walk_statements_single(stmt: ast.Stmt) -> Iterator[ast.Stmt]:
    """Yield ``stmt`` and every statement nested inside it."""
    yield stmt
    if isinstance(stmt, ast.For):
        if stmt.init is not None:
            yield from walk_statements_single(stmt.init)
        if stmt.update is not None:
            yield from walk_statements_single(stmt.update)
    for block in child_blocks(stmt):
        if block is stmt:
            for inner in block.stmts:  # type: ignore[attr-defined]
                yield from walk_statements_single(inner)
        else:
            yield from walk_statements(block)


def walk_function_expressions(block: ast.Block) -> Iterator[ast.Expr]:
    """Yield every expression (recursively) appearing anywhere in ``block``."""
    for stmt in walk_statements(block):
        for expr in statement_expressions(stmt):
            yield from walk_expression(expr)


def transform_block(block: ast.Block,
                    fn: Callable[[ast.Stmt], StmtRewrite]) -> None:
    """Rewrite the statements of a block (recursively), in place.

    ``fn`` receives each statement *after* its nested blocks have been
    transformed and returns either the statement (possibly modified), a list
    of replacement statements, or ``None`` to delete it.
    """
    new_stmts: list[ast.Stmt] = []
    for stmt in block.stmts:
        _transform_children(stmt, fn)
        result = fn(stmt)
        if result is None:
            continue
        if isinstance(result, list):
            new_stmts.extend(result)
        else:
            new_stmts.append(result)
    block.stmts = new_stmts


def _transform_children(stmt: ast.Stmt, fn: Callable[[ast.Stmt], StmtRewrite]) -> None:
    if isinstance(stmt, ast.For):
        if stmt.init is not None:
            replaced = fn(stmt.init)
            stmt.init = _single_or_block(replaced)
        if stmt.update is not None:
            replaced = fn(stmt.update)
            stmt.update = _single_or_block(replaced)
    for block in child_blocks(stmt):
        transform_block(block, fn)


def _single_or_block(result: StmtRewrite) -> Optional[ast.Stmt]:
    if result is None:
        return None
    if isinstance(result, list):
        if not result:
            return None
        if len(result) == 1:
            return result[0]
        return ast.Block(list(result))
    return result


def count_statements(block: ast.Block) -> int:
    """Number of statements in a block, recursively (excluding blocks)."""
    return sum(1 for s in walk_statements(block) if not isinstance(s, ast.Block))


def expressions_equal(left: ast.Expr, right: ast.Expr) -> bool:
    """Structural equality of two expressions, ignoring locations and types."""
    if type(left) is not type(right):
        return False
    if isinstance(left, ast.IntLiteral):
        return left.value == right.value  # type: ignore[attr-defined]
    if isinstance(left, ast.StringLiteral):
        return left.value == right.value  # type: ignore[attr-defined]
    if isinstance(left, ast.Identifier):
        return left.name == right.name  # type: ignore[attr-defined]
    if isinstance(left, ast.BinaryOp):
        return (left.op == right.op  # type: ignore[attr-defined]
                and expressions_equal(left.left, right.left)  # type: ignore[attr-defined]
                and expressions_equal(left.right, right.right))  # type: ignore[attr-defined]
    if isinstance(left, ast.UnaryOp):
        return (left.op == right.op  # type: ignore[attr-defined]
                and expressions_equal(left.operand, right.operand))  # type: ignore[attr-defined]
    if isinstance(left, ast.Member):
        return (left.fieldname == right.fieldname  # type: ignore[attr-defined]
                and left.arrow == right.arrow  # type: ignore[attr-defined]
                and expressions_equal(left.base, right.base))  # type: ignore[attr-defined]
    if isinstance(left, ast.Cast):
        return (left.target_type == right.target_type  # type: ignore[attr-defined]
                and expressions_equal(left.operand, right.operand))  # type: ignore[attr-defined]
    if isinstance(left, ast.Call):
        if left.callee != right.callee:  # type: ignore[attr-defined]
            return False
        if len(left.args) != len(right.args):  # type: ignore[attr-defined]
            return False
        return all(expressions_equal(a, b)
                   for a, b in zip(left.args, right.args))  # type: ignore[attr-defined]
    left_children = child_expressions(left)
    right_children = child_expressions(right)
    if len(left_children) != len(right_children):
        return False
    return all(expressions_equal(a, b) for a, b in zip(left_children, right_children))


def collect_called_functions(block: ast.Block) -> set[str]:
    """Names of all functions called (or tasks posted) anywhere in ``block``."""
    called: set[str] = set()
    for stmt in walk_statements(block):
        if isinstance(stmt, ast.Post):
            called.add(stmt.task)
        for expr in statement_expressions(stmt):
            for node in walk_expression(expr):
                if isinstance(node, ast.Call):
                    called.add(node.callee)
    return called


def collect_identifiers(block: ast.Block) -> set[str]:
    """Names of all identifiers referenced anywhere in ``block``."""
    names: set[str] = set()
    for expr in walk_function_expressions(block):
        if isinstance(expr, ast.Identifier):
            names.add(expr.name)
    return names
