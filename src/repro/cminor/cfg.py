"""Control-flow graphs for CMinor functions.

The optimizer passes themselves work on the structured AST (as cXprop works
on CIL's structured representation), but a few analyses — unreachable-code
detection after branch folding, and the statistics reported by the
toolchain — are easier to express over an explicit control-flow graph.
This module builds a statement-level CFG for a (simplified) function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.cminor import ast_nodes as ast


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of simple statements."""

    index: int
    stmts: list[ast.Stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)
    label: str = ""

    def __repr__(self) -> str:
        return f"BasicBlock({self.index}, {len(self.stmts)} stmts, -> {self.successors})"


class ControlFlowGraph:
    """A statement-level CFG with a unique entry and exit block."""

    def __init__(self, function_name: str):
        self.function_name = function_name
        self.blocks: list[BasicBlock] = []
        self.entry = self._new_block("entry")
        self.exit = self._new_block("exit")

    def _new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(index=len(self.blocks), label=label)
        self.blocks.append(block)
        return block

    def add_edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        if dst.index not in src.successors:
            src.successors.append(dst.index)
        if src.index not in dst.predecessors:
            dst.predecessors.append(src.index)

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def iter_blocks(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def reachable_blocks(self) -> set[int]:
        """Indices of blocks reachable from the entry block."""
        seen: set[int] = set()
        stack = [self.entry.index]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self.blocks[index].successors)
        return seen

    def statement_count(self) -> int:
        return sum(len(b.stmts) for b in self.blocks)


class _CFGBuilder:
    """Builds a CFG from a structured (simplified) function body."""

    def __init__(self, func: ast.FunctionDef):
        self.func = func
        self.cfg = ControlFlowGraph(func.name)
        # Stack of (break target, continue target) for enclosing loops.
        self.loop_targets: list[tuple[BasicBlock, BasicBlock]] = []

    def build(self) -> ControlFlowGraph:
        current = self.cfg._new_block("body")
        self.cfg.add_edge(self.cfg.entry, current)
        last = self._emit_block(self.func.body, current)
        if last is not None:
            self.cfg.add_edge(last, self.cfg.exit)
        return self.cfg

    def _emit_block(self, block: ast.Block,
                    current: Optional[BasicBlock]) -> Optional[BasicBlock]:
        for stmt in block.stmts:
            if current is None:
                # Unreachable code after return/break/continue; keep collecting
                # it into a fresh, unconnected block so it is still visible.
                current = self.cfg._new_block("unreachable")
            current = self._emit_stmt(stmt, current)
        return current

    def _emit_stmt(self, stmt: ast.Stmt,
                   current: BasicBlock) -> Optional[BasicBlock]:
        if isinstance(stmt, ast.Block):
            return self._emit_block(stmt, current)
        if isinstance(stmt, ast.Atomic):
            current.stmts.append(stmt)
            return self._emit_block(stmt.body, current)
        if isinstance(stmt, ast.If):
            current.stmts.append(stmt)
            then_block = self.cfg._new_block("then")
            self.cfg.add_edge(current, then_block)
            then_end = self._emit_block(stmt.then_body, then_block)
            join = self.cfg._new_block("join")
            if stmt.else_body is not None:
                else_block = self.cfg._new_block("else")
                self.cfg.add_edge(current, else_block)
                else_end = self._emit_block(stmt.else_body, else_block)
                if else_end is not None:
                    self.cfg.add_edge(else_end, join)
            else:
                self.cfg.add_edge(current, join)
            if then_end is not None:
                self.cfg.add_edge(then_end, join)
            return join
        if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            return self._emit_loop(stmt, current)
        if isinstance(stmt, ast.Return):
            current.stmts.append(stmt)
            self.cfg.add_edge(current, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            current.stmts.append(stmt)
            if self.loop_targets:
                self.cfg.add_edge(current, self.loop_targets[-1][0])
            else:
                self.cfg.add_edge(current, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Continue):
            current.stmts.append(stmt)
            if self.loop_targets:
                self.cfg.add_edge(current, self.loop_targets[-1][1])
            else:
                self.cfg.add_edge(current, self.cfg.exit)
            return None
        current.stmts.append(stmt)
        return current

    def _emit_loop(self, stmt: ast.Stmt, current: BasicBlock) -> Optional[BasicBlock]:
        header = self.cfg._new_block("loop")
        after = self.cfg._new_block("after")
        self.cfg.add_edge(current, header)
        header.stmts.append(stmt)
        body_block = self.cfg._new_block("loop_body")
        self.cfg.add_edge(header, body_block)
        cond = getattr(stmt, "cond", None)
        if not (isinstance(cond, ast.IntLiteral) and cond.value != 0):
            # The loop may be skipped entirely if the condition can be false.
            self.cfg.add_edge(header, after)
        self.loop_targets.append((after, header))
        body = stmt.body  # type: ignore[attr-defined]
        body_end = self._emit_block(body, body_block)
        self.loop_targets.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end, header)
        return after


def build_cfg(func: ast.FunctionDef) -> ControlFlowGraph:
    """Build a control-flow graph for ``func``."""
    return _CFGBuilder(func).build()


def has_unreachable_code(func: ast.FunctionDef) -> bool:
    """Whether ``func`` contains statements not reachable from its entry."""
    cfg = build_cfg(func)
    reachable = cfg.reachable_blocks()
    for block in cfg.iter_blocks():
        if block.index in reachable:
            continue
        if block.stmts:
            return True
    return False
