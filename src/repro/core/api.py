"""High-level facade over the toolchain, simulator and benchmark suite.

:class:`SafeTinyOS` is a thin back-compat shim over
:class:`repro.api.Workbench`: every build routes through the Workbench's
cache-routed sweep machinery (shared front-end snapshots, content-key
memoization) while the historical signatures — ``build`` returning a
:class:`BuildOutcome` with a live program, ``simulate`` returning a
:class:`SimulationOutcome` — stay intact.  One semantic refinement rides
along: identical builds are memoized for the session, so repeated
``build`` calls share one result object — treat outcomes as read-only
(clone the program before mutating it).  New code should prefer the
:mod:`repro.api` specs and records directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.api.specs import BuildSpec
from repro.api.workbench import Workbench, is_registered_variant, run_network
from repro.avrora.network import TrafficGenerator
from repro.avrora.node import Node
from repro.ccured.flid import FlidTable, decompress_failure
from repro.nesc.application import Application
from repro.toolchain.config import BuildVariant
from repro.toolchain.contexts import DEFAULT_DUTY_CYCLE_SECONDS, duty_cycle_context
from repro.toolchain.pipeline import BuildResult
from repro.toolchain.variants import BASELINE, SAFE_OPTIMIZED, variant_by_name


@dataclass
class BuildOutcome:
    """A finished build, exposing the numbers the paper reports."""

    result: BuildResult

    @property
    def program(self):
        return self.result.program

    @property
    def image(self):
        return self.result.image

    @property
    def application(self) -> str:
        return self.result.application

    @property
    def variant(self) -> str:
        return self.result.variant.name

    @property
    def code_bytes(self) -> int:
        return self.result.image.code_bytes

    @property
    def ram_bytes(self) -> int:
        return self.result.image.ram_bytes

    @property
    def checks_inserted(self) -> int:
        return self.result.checks_inserted

    @property
    def checks_surviving(self) -> int:
        return self.result.checks_surviving

    @property
    def checks_removed(self) -> int:
        return self.checks_inserted - self.checks_surviving

    @property
    def flid_table(self) -> Optional[FlidTable]:
        if self.result.ccured is None:
            return None
        return self.result.ccured.flid_table

    def explain_failure(self, flid: int) -> str:
        """Decompress a failure-location identifier reported by a mote."""
        table = self.flid_table
        if table is None:
            return f"unsafe build: no failure table (flid {flid})"
        return decompress_failure(table, flid)

    def summary(self) -> dict[str, object]:
        return self.result.summary()


@dataclass
class SimulationOutcome:
    """Results of simulating one build."""

    nodes: list[Node] = field(default_factory=list)
    seconds: float = 0.0
    label: str = ""

    def _require_nodes(self) -> None:
        if not self.nodes:
            what = self.label or "this simulation"
            raise ValueError(f"{what} has no nodes; simulate with "
                             f"node_count >= 1 to read per-node statistics")

    @property
    def node(self) -> Node:
        self._require_nodes()
        return self.nodes[0]

    @property
    def duty_cycle(self) -> float:
        self._require_nodes()
        return self.node.duty_cycle()

    @property
    def duty_cycles(self) -> list[float]:
        return [node.duty_cycle() for node in self.nodes]

    @property
    def failures(self):
        return [failure for node in self.nodes for failure in node.failures]

    @property
    def halted(self) -> bool:
        return any(node.halted for node in self.nodes)

    def led_changes(self) -> int:
        return sum(node.leds.state.changes for node in self.nodes)


class SafeTinyOS:
    """Facade: build and simulate Safe TinyOS applications.

    Args:
        default_variant: Variant used when ``build`` is called without one;
            defaults to the paper's headline configuration (safe, FLIDs,
            inlined, optimized by cXprop).
        workbench: Session engine to route builds through; a private one is
            created when omitted.  Passing a shared
            :class:`~repro.api.Workbench` lets several facades (or a facade
            plus direct API callers) reuse one build cache.
    """

    def __init__(self, default_variant: Union[str, BuildVariant] = SAFE_OPTIMIZED,
                 workbench: Optional[Workbench] = None):
        if default_variant is None:
            default_variant = SAFE_OPTIMIZED
        self.default_variant = self._resolve_variant(default_variant)
        self.workbench = workbench if workbench is not None else Workbench()

    def _resolve_variant(self, variant: Union[str, BuildVariant, None],
                         ) -> BuildVariant:
        """Resolve a variant argument; ``None`` means the facade's default."""
        if variant is None:
            return self.default_variant
        if isinstance(variant, BuildVariant):
            return variant
        return variant_by_name(variant)

    # -- building --------------------------------------------------------------

    def applications(self) -> list[str]:
        """Names of the registered benchmark applications."""
        return self.workbench.applications()

    def build(self, app: Union[str, Application],
              variant: Union[str, BuildVariant, None] = None) -> BuildOutcome:
        """Build an application.

        Args:
            app: Either a figure label (``"Surge_Mica2"``) or a custom
                :class:`~repro.nesc.application.Application`.
            variant: Build variant name or object; defaults to the facade's
                default variant.
        """
        chosen = self._resolve_variant(variant)
        if isinstance(app, str) and is_registered_variant(chosen):
            result = self.workbench.build_result(
                BuildSpec(app=app, variant=chosen.name))
        else:
            result = self.workbench.build_unregistered(app, chosen)
        return BuildOutcome(result)

    def build_baseline(self, app: Union[str, Application]) -> BuildOutcome:
        """Build the unsafe, unoptimized baseline of an application."""
        return self.build(app, BASELINE)

    # -- simulation --------------------------------------------------------------

    def simulate(self, outcome: BuildOutcome,
                 seconds: float = DEFAULT_DUTY_CYCLE_SECONDS,
                 node_count: int = 1,
                 traffic: Optional[TrafficGenerator] = None,
                 use_default_context: bool = True) -> SimulationOutcome:
        """Simulate a built image and return duty-cycle and device statistics."""
        if outcome.result is None or outcome.result.program is None:
            what = ""
            if outcome.result is not None:
                what = f" {outcome.application} × {outcome.variant}"
            raise ValueError(
                f"cannot simulate build{what}: it carries a summary only "
                f"(process-pool sweeps do not keep programs); rebuild it "
                f"in-process, e.g. via Workbench.build_result or "
                f"SafeTinyOS.build")
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        if traffic is None and use_default_context:
            traffic = duty_cycle_context(outcome.application)
        network = run_network(outcome.result.program, seconds=seconds,
                              node_count=node_count, traffic=traffic)
        return SimulationOutcome(
            nodes=network.nodes, seconds=seconds,
            label=f"simulation of {outcome.application} × {outcome.variant}")
