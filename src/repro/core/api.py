"""High-level facade over the toolchain, simulator and benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.avrora.network import Network, TrafficGenerator
from repro.avrora.node import Node
from repro.ccured.flid import FlidTable, decompress_failure
from repro.nesc.application import Application
from repro.tinyos import suite
from repro.toolchain.config import BuildVariant
from repro.toolchain.contexts import DEFAULT_DUTY_CYCLE_SECONDS, duty_cycle_context
from repro.toolchain.pipeline import BuildPipeline, BuildResult
from repro.toolchain.variants import BASELINE, SAFE_OPTIMIZED, variant_by_name


@dataclass
class BuildOutcome:
    """A finished build, exposing the numbers the paper reports."""

    result: BuildResult

    @property
    def program(self):
        return self.result.program

    @property
    def image(self):
        return self.result.image

    @property
    def application(self) -> str:
        return self.result.application

    @property
    def variant(self) -> str:
        return self.result.variant.name

    @property
    def code_bytes(self) -> int:
        return self.result.image.code_bytes

    @property
    def ram_bytes(self) -> int:
        return self.result.image.ram_bytes

    @property
    def checks_inserted(self) -> int:
        return self.result.checks_inserted

    @property
    def checks_surviving(self) -> int:
        return self.result.checks_surviving

    @property
    def checks_removed(self) -> int:
        return self.checks_inserted - self.checks_surviving

    @property
    def flid_table(self) -> Optional[FlidTable]:
        if self.result.ccured is None:
            return None
        return self.result.ccured.flid_table

    def explain_failure(self, flid: int) -> str:
        """Decompress a failure-location identifier reported by a mote."""
        table = self.flid_table
        if table is None:
            return f"unsafe build: no failure table (flid {flid})"
        return decompress_failure(table, flid)

    def summary(self) -> dict[str, object]:
        return self.result.summary()


@dataclass
class SimulationOutcome:
    """Results of simulating one build."""

    nodes: list[Node] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def node(self) -> Node:
        return self.nodes[0]

    @property
    def duty_cycle(self) -> float:
        return self.node.duty_cycle()

    @property
    def duty_cycles(self) -> list[float]:
        return [node.duty_cycle() for node in self.nodes]

    @property
    def failures(self):
        return [failure for node in self.nodes for failure in node.failures]

    @property
    def halted(self) -> bool:
        return any(node.halted for node in self.nodes)

    def led_changes(self) -> int:
        return sum(node.leds.state.changes for node in self.nodes)


class SafeTinyOS:
    """Facade: build and simulate Safe TinyOS applications.

    Args:
        default_variant: Variant used when ``build`` is called without one;
            defaults to the paper's headline configuration (safe, FLIDs,
            inlined, optimized by cXprop).
    """

    def __init__(self, default_variant: Union[str, BuildVariant] = SAFE_OPTIMIZED):
        self.default_variant = self._resolve_variant(default_variant)

    @staticmethod
    def _resolve_variant(variant: Union[str, BuildVariant, None]) -> BuildVariant:
        if variant is None:
            return SAFE_OPTIMIZED
        if isinstance(variant, BuildVariant):
            return variant
        return variant_by_name(variant)

    # -- building --------------------------------------------------------------

    def applications(self) -> list[str]:
        """Names of the registered benchmark applications."""
        return suite.all_application_names()

    def build(self, app: Union[str, Application],
              variant: Union[str, BuildVariant, None] = None) -> BuildOutcome:
        """Build an application.

        Args:
            app: Either a figure label (``"Surge_Mica2"``) or a custom
                :class:`~repro.nesc.application.Application`.
            variant: Build variant name or object; defaults to the facade's
                default variant.
        """
        chosen = self._resolve_variant(variant) if variant is not None \
            else self.default_variant
        pipeline = BuildPipeline(chosen)
        if isinstance(app, str):
            result = pipeline.build_named(app)
        else:
            result = pipeline.build(app)
        return BuildOutcome(result)

    def build_baseline(self, app: Union[str, Application]) -> BuildOutcome:
        """Build the unsafe, unoptimized baseline of an application."""
        return self.build(app, BASELINE)

    # -- simulation --------------------------------------------------------------

    def simulate(self, outcome: BuildOutcome,
                 seconds: float = DEFAULT_DUTY_CYCLE_SECONDS,
                 node_count: int = 1,
                 traffic: Optional[TrafficGenerator] = None,
                 use_default_context: bool = True) -> SimulationOutcome:
        """Simulate a built image and return duty-cycle and device statistics."""
        if traffic is None and use_default_context:
            traffic = duty_cycle_context(outcome.application)
        network = Network(traffic=traffic)
        for node_id in range(1, node_count + 1):
            node = Node(outcome.program, node_id=node_id)
            node.boot()
            network.add_node(node)
        network.run(seconds)
        return SimulationOutcome(nodes=network.nodes, seconds=seconds)
