"""The public API of the Safe TinyOS reproduction.

Most users need only two classes:

* :class:`SafeTinyOS` — build an application (either one of the registered
  benchmark applications or a custom :class:`~repro.nesc.application.Application`)
  with any of the paper's build variants, and simulate the result.
* :class:`BuildOutcome` — what a build returns: the final program, its
  memory image, the check accounting, and helpers for running it.

Example::

    from repro.core import SafeTinyOS

    system = SafeTinyOS()
    outcome = system.build("BlinkTask_Mica2", variant="safe-optimized")
    print(outcome.code_bytes, outcome.ram_bytes, outcome.checks_removed)
    run = system.simulate(outcome, seconds=2.0)
    print(run.duty_cycle)
"""

from repro.core.api import BuildOutcome, SafeTinyOS, SimulationOutcome

__all__ = ["SafeTinyOS", "BuildOutcome", "SimulationOutcome"]
