"""The pass-manager layer: Figure 1 as declarative pass lists.

The paper's evaluation is dozens of builds — every figure is an N-app ×
M-variant sweep through the toolchain — so the stages are organized the way
LLVM-style compilers organize transformations: each stage is a :class:`Pass`
with a name and declared analysis-invalidation behaviour, and a
:class:`PassManager` executes a pass list with uniform per-pass
instrumentation (wall time, change counts, before/after program size)
collected into a structured :class:`BuildTrace`.

Layer modules register their passes here:

* ``repro.nesc.passes`` — ``nesc.flatten``, ``nesc.hwrefactor``
* ``repro.ccured.passes`` — ``ccured.cure``, ``ccured.optimize``
* ``repro.cxprop.passes`` — ``inline``, ``cxprop`` (a :class:`FixpointPass`
  over ``cxprop.facts``/``cxprop.fold``/``cxprop.copyprop``/
  ``cxprop.atomic``/``cxprop.dce``)
* ``repro.backend.passes`` — ``gcc``, ``image``

``repro.toolchain.lower`` compiles a :class:`BuildVariant` into a pass list;
``repro.toolchain.pipeline`` is a thin facade over the manager and
``repro.toolchain.sweep`` batches N×M builds over shared front-end programs.

Analysis invalidation is *declaration driven*: a pass declares
``invalidates_analysis`` (and optionally the analyses it ``preserves``), and
the manager calls ``program.invalidate_analysis()`` after every pass that
reported changes — pass authors never sprinkle manual invalidation calls.
(The legacy stage functions the passes wrap still self-invalidate so that
calling them directly, outside any manager, stays safe; the manager's
declaration-driven call is idempotent on top.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.cminor.program import Program

if TYPE_CHECKING:  # pragma: no cover
    from repro.backend.image import MemoryImage
    from repro.toolchain.config import BuildVariant

#: Conventional name for the whole derived-analysis cache in ``preserves``
#: declarations: a pass that mutates the AST but declares
#: ``preserves = frozenset({ANALYSIS})`` keeps ``Program.analysis()`` valid.
ANALYSIS = "analysis"


# ---------------------------------------------------------------------------
# Pass protocol and outcomes
# ---------------------------------------------------------------------------


@dataclass
class PassOutcome:
    """What one pass execution produced.

    Attributes:
        changed: Number of changes the pass made (0 = program untouched).
        detail: The pass's own report object (stage-specific, stored in the
            context's ``reports`` and in the :class:`BuildTrace`).
        program: Set when the pass *produced* a program (the nesC front end)
            rather than transforming the context's current one.
    """

    changed: int = 0
    detail: object = None
    program: Optional[Program] = None


class Pass:
    """One stage of the build pipeline.

    Subclasses set :attr:`name` (the registry/report identifier), declare
    their analysis behaviour, and implement :meth:`run`.

    Attributes:
        name: Stable identifier used in traces, reports and the registry.
        invalidates_analysis: Whether a change made by this pass invalidates
            the program's derived-analysis cache.  The manager calls
            ``program.invalidate_analysis()`` after the pass iff it reported
            changes and this flag is set (and ``preserves`` does not cover
            the whole cache).
        preserves: Names of derived analyses this pass keeps valid even when
            it changes the program (``{ANALYSIS}`` preserves everything).
    """

    name: str = "pass"
    invalidates_analysis: bool = True
    preserves: frozenset[str] = frozenset()

    def run(self, program: Optional[Program], ctx: "PassContext") -> PassOutcome:
        raise NotImplementedError

    def cache_key(self, variant: Optional["BuildVariant"] = None) -> str:
        """Identity of this pass's effect for prefix sharing.

        Two pass-list prefixes with equal key sequences produce identical
        programs from the same input, so the sweep runner may build one and
        clone it for the others.  Passes whose behaviour depends on their
        configuration (or on the build variant) must fold those knobs into
        the key; the default is the bare pass name.
        """
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Pass registry
# ---------------------------------------------------------------------------

#: Registered pass factories by name.  Layer modules populate this via
#: :func:`register_pass`; ``repro.toolchain.lower`` imports the layer modules
#: so looking at ``registered_passes()`` after importing it shows the full
#: toolchain.
PASS_REGISTRY: dict[str, Callable[..., Pass]] = {}


def register_pass(name: str):
    """Class decorator registering a pass factory under ``name``."""

    def decorate(factory: Callable[..., Pass]) -> Callable[..., Pass]:
        if name in PASS_REGISTRY:
            raise ValueError(f"pass {name!r} registered twice")
        PASS_REGISTRY[name] = factory
        return factory

    return decorate


def create_pass(name: str, **kwargs) -> Pass:
    """Instantiate a registered pass by name."""
    try:
        factory = PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown pass {name!r}; known: {registered_passes()}") \
            from None
    return factory(**kwargs)


def registered_passes() -> list[str]:
    return sorted(PASS_REGISTRY)


# ---------------------------------------------------------------------------
# Context and trace
# ---------------------------------------------------------------------------


@dataclass
class PassContext:
    """Shared state threaded through one build's pass list.

    Attributes:
        variant: The build variant being lowered (None for ad-hoc runs).
        application: The wired nesC application (input of the front end).
        label: Figure label for reports (defaults to the application name).
        program: The current whole program (None until the front end ran).
        image: The memory image (set by the ``image`` pass).
        reports: Per-pass detail reports keyed by pass name.
        artifacts: Scratch space for passes that communicate within a pass
            list (e.g. the cXprop round facts).
    """

    variant: Optional["BuildVariant"] = None
    application: Optional[object] = None
    label: str = ""
    program: Optional[Program] = None
    image: Optional["MemoryImage"] = None
    reports: dict[str, object] = field(default_factory=dict)
    artifacts: dict[str, object] = field(default_factory=dict)


@dataclass
class SizeSnapshot:
    """Coarse program size at a pass boundary."""

    functions: int
    statements: int
    code_bytes: Optional[int] = None
    ram_bytes: Optional[int] = None


@dataclass
class PassReport:
    """Uniform instrumentation record for one executed pass."""

    name: str
    changed: int
    wall_time_s: float
    before: Optional[SizeSnapshot] = None
    after: Optional[SizeSnapshot] = None
    detail: object = None


@dataclass
class BuildTrace:
    """Structured record of one trip through a pass list."""

    passes: list[PassReport] = field(default_factory=list)
    wall_time_s: float = 0.0

    def report(self, name: str) -> Optional[PassReport]:
        """The (last) report of the named pass, or None if it did not run."""
        found = None
        for entry in self.passes:
            if entry.name == name:
                found = entry
        return found

    def pass_names(self) -> list[str]:
        return [entry.name for entry in self.passes]

    def changed_total(self) -> int:
        return sum(entry.changed for entry in self.passes)

    def merged_with(self, other: "BuildTrace") -> "BuildTrace":
        """Concatenate two traces (shared front end + per-variant back end)."""
        return BuildTrace(passes=list(self.passes) + list(other.passes),
                          wall_time_s=self.wall_time_s + other.wall_time_s)

    def summary(self) -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        for entry in self.passes:
            row: dict[str, object] = {
                "pass": entry.name,
                "changed": entry.changed,
                "wall_time_s": round(entry.wall_time_s, 6),
            }
            if entry.before is not None and entry.after is not None:
                row["statements"] = (entry.before.statements,
                                     entry.after.statements)
                if entry.after.code_bytes is not None:
                    row["code_bytes"] = (entry.before.code_bytes,
                                         entry.after.code_bytes)
                    row["ram_bytes"] = (entry.before.ram_bytes,
                                        entry.after.ram_bytes)
            rows.append(row)
        return rows

    def format(self) -> str:
        lines = [f"{'pass':<18} {'changed':>8} {'ms':>8} {'stmts':>14}"]
        for entry in self.passes:
            stmts = ""
            if entry.before is not None and entry.after is not None:
                stmts = f"{entry.before.statements}->{entry.after.statements}"
            lines.append(f"{entry.name:<18} {entry.changed:>8} "
                         f"{entry.wall_time_s * 1000:>8.2f} {stmts:>14}")
        lines.append(f"total {self.wall_time_s * 1000:.2f} ms")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


#: Optional per-pass observer: called with (pass, report, ctx) after each
#: executed pass.  Used by tests and ad-hoc tracing.
PassObserver = Callable[[Pass, PassReport, PassContext], None]

#: Process-wide count of passes *actually executed* by any PassManager.
#: Passes replayed from a prefix snapshot never run, so they never count —
#: which is what makes this the honest "did the store/front-end cache do
#: its job" probe behind ``Workbench.stats()["passes_executed"]``.
_EXECUTED_PASSES = 0


def executed_pass_count() -> int:
    """Total passes executed in this process (monotonic; compare deltas)."""
    return _EXECUTED_PASSES


class PassManager:
    """Executes a pass list over a :class:`PassContext`.

    Args:
        passes: The pass list, in execution order.
        measure_sizes: Also record code/RAM bytes in every snapshot (builds
            a throwaway memory image per pass boundary — useful for traces
            and ablations, too slow for batched sweeps; off by default).
        observer: Optional callback invoked after every pass.
    """

    def __init__(self, passes: Sequence[Pass], measure_sizes: bool = False,
                 observer: Optional[PassObserver] = None):
        self.passes = list(passes)
        self.measure_sizes = measure_sizes
        self.observer = observer

    def run(self, ctx: PassContext) -> BuildTrace:
        global _EXECUTED_PASSES
        trace = BuildTrace()
        started = time.perf_counter()
        for pass_ in self.passes:
            _EXECUTED_PASSES += 1
            before = self._snapshot(ctx.program)
            t0 = time.perf_counter()
            outcome = pass_.run(ctx.program, ctx)
            if outcome.program is not None:
                ctx.program = outcome.program
            self._apply_invalidation(pass_, outcome, ctx.program)
            wall = time.perf_counter() - t0
            after = self._snapshot(ctx.program)
            report = PassReport(name=pass_.name, changed=outcome.changed,
                                wall_time_s=wall, before=before, after=after,
                                detail=outcome.detail)
            trace.passes.append(report)
            ctx.reports[pass_.name] = outcome.detail
            if self.observer is not None:
                self.observer(pass_, report, ctx)
        trace.wall_time_s = time.perf_counter() - started
        return trace

    @staticmethod
    def _apply_invalidation(pass_: Pass, outcome: PassOutcome,
                            program: Optional[Program]) -> None:
        if program is None or not outcome.changed:
            return
        if not pass_.invalidates_analysis or ANALYSIS in pass_.preserves:
            return
        program.invalidate_analysis()

    def _snapshot(self, program: Optional[Program]) -> Optional[SizeSnapshot]:
        if program is None:
            return None
        stats = program.summary()
        snapshot = SizeSnapshot(functions=stats["functions"],
                                statements=stats["statements"])
        if self.measure_sizes:
            from repro.backend.image import build_image

            image = build_image(program)
            snapshot.code_bytes = image.code_bytes
            snapshot.ram_bytes = image.ram_bytes
        return snapshot


# ---------------------------------------------------------------------------
# Fixpoint combinator
# ---------------------------------------------------------------------------


class FixpointPass(Pass):
    """Iterates a body of passes until a round changes nothing.

    This is the cXprop driver loop expressed as a combinator: each round
    runs the body passes in order, summing their change counts; iteration
    stops when a round reports zero changes or ``max_rounds`` is reached.
    Analysis invalidation inside the loop is declaration driven, exactly as
    in the top-level manager.

    Subclasses override :meth:`summarize` to aggregate the per-round details
    into a stage report (see ``repro.cxprop.passes.CxpropPass``).
    """

    def __init__(self, name: str, body: Sequence[Pass], max_rounds: int = 3):
        self.name = name
        self.body = list(body)
        self.max_rounds = max_rounds

    def run(self, program: Optional[Program], ctx: PassContext) -> PassOutcome:
        assert program is not None, f"{self.name}: no program to iterate on"
        rounds = 0
        total_changed = 0
        round_details: list[dict[str, object]] = []
        while rounds < self.max_rounds:
            changed = 0
            details: dict[str, object] = {}
            for pass_ in self.body:
                outcome = pass_.run(program, ctx)
                PassManager._apply_invalidation(pass_, outcome, program)
                changed += outcome.changed
                details[pass_.name] = outcome.detail
            rounds += 1
            total_changed += changed
            round_details.append(details)
            if changed == 0:
                break
        return PassOutcome(changed=total_changed,
                           detail=self.summarize(rounds, round_details))

    def summarize(self, rounds: int,
                  round_details: list[dict[str, object]]) -> object:
        return {"rounds": rounds, "round_details": round_details}
