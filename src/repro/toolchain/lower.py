"""Lowering a :class:`BuildVariant` to a declarative pass list.

A variant is *data*; this module compiles it into the pass objects the
:class:`~repro.toolchain.passes.PassManager` executes.  The split between
:func:`front_end_passes` (the nesC compiler + hardware-register refactoring)
and :func:`back_end_passes` (everything from CCured to the image) is what
lets the sweep runner share one front-end program per application across
variants: the front end depends only on ``variant.suppress_norace``, so
variants agreeing on that flag can build from clones of the same program.
"""

from __future__ import annotations

# Importing the layer modules populates the pass registry.
from repro.backend.passes import BuildImagePass, GccOptimizePass
from repro.ccured.passes import CCuredOptimizerPass, CurePass
from repro.cxprop.driver import CxpropConfig
from repro.cxprop.passes import CxpropPass, InlinePass
from repro.nesc.passes import FlattenPass, HwRefactorPass
from repro.toolchain.config import BuildVariant
from repro.toolchain.passes import Pass


def front_end_passes(variant: BuildVariant) -> list[Pass]:
    """The variant's front end: nesC flattening + hardware refactoring."""
    return [
        FlattenPass(suppress_norace=variant.suppress_norace),
        HwRefactorPass(),
    ]


def back_end_passes(variant: BuildVariant) -> list[Pass]:
    """Everything after the front end, in the paper's Figure 1 order."""
    passes: list[Pass] = []
    if variant.safe:
        passes.append(CurePass())
        if variant.run_ccured_optimizer:
            passes.append(CCuredOptimizerPass())
    if variant.run_inliner:
        passes.append(InlinePass())
    if variant.run_cxprop:
        passes.append(CxpropPass(CxpropConfig(domain=variant.cxprop_domain)))
    passes.append(GccOptimizePass())
    passes.append(BuildImagePass())
    return passes


def variant_passes(variant: BuildVariant) -> list[Pass]:
    """The variant's complete pass list (front end + back end)."""
    return front_end_passes(variant) + back_end_passes(variant)


def variant_pass_names(variant: BuildVariant) -> list[str]:
    """The pass names a variant lowers to (for reports and tests)."""
    return [pass_.name for pass_ in variant_passes(variant)]
