"""Batched N-app × M-variant builds over shared pass-list prefixes.

Every figure of the paper is a sweep: each of the twelve applications built
under each of several variants.  Building them independently re-runs the
nesC front end (parse, flatten, simplify, type check, race analysis) once
per variant — and, for variants that also agree on their CCured
configuration, the whole instrumentation stage — even though those prefixes
of the pass list are deterministic functions of the application and the
pass configurations.

:class:`SweepRunner` exploits that: every pass declares a
:meth:`~repro.toolchain.passes.Pass.cache_key`, and variants whose pass
lists share a key prefix build from a fast
:meth:`~repro.cminor.program.Program.clone` of a snapshot taken at the
divergence point.  The front end (``nesc.flatten`` + ``nesc.hwrefactor``)
is the universal shared prefix; the three FLID-cured Figure 3 variants
additionally share the CCured stage.  Shared and unshared sweeps must
produce identical build summaries — ``benchmarks/bench_pipeline_sweep.py``
asserts this and records the speedup.

An opt-in process-pool mode (``processes=N``) distributes whole
applications across worker processes; since programs and images do not
cross process boundaries, process-pool builds carry summaries only
(``SweepBuild.result`` is ``None``).

Snapshots normally live for one :meth:`SweepRunner.run` call.  A caller
that issues many small sweeps over time — :class:`repro.api.Workbench`
routes every interactive ``build()`` through a one-build sweep — can pass a
``snapshot_store`` to persist them across calls, so the second build of an
application resumes from the first build's front end even though the two
builds arrived in separate calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.cminor.program import Program
from repro.nesc.application import Application
from repro.tinyos import suite
from repro.toolchain.config import BuildVariant
from repro.toolchain.lower import variant_passes
from repro.toolchain.passes import (
    BuildTrace,
    Pass,
    PassContext,
    PassManager,
    PassReport,
)
from repro.toolchain.pipeline import BuildPipeline, BuildResult, \
    result_from_context


@dataclass
class SweepBuild:
    """One (application, variant) build of a sweep.

    ``result`` carries the full :class:`BuildResult` for in-process sweeps
    and is ``None`` in process-pool mode (programs do not cross process
    boundaries); ``summary`` is always present and identical to
    ``BuildResult.summary()``.
    """

    application: str
    variant_name: str
    summary: dict[str, object]
    result: Optional[BuildResult] = None


@dataclass
class SweepResult:
    """All builds of one sweep, in (application, variant) order."""

    builds: list[SweepBuild] = field(default_factory=list)

    def get(self, application: str, variant_name: str) -> SweepBuild:
        for build in self.builds:
            if build.application == application and \
                    build.variant_name == variant_name:
                return build
        raise KeyError(f"no build for {application!r} / {variant_name!r}")

    def summaries(self) -> list[dict[str, object]]:
        return [build.summary for build in self.builds]

    def __len__(self) -> int:
        return len(self.builds)

    def __iter__(self):
        return iter(self.builds)


@dataclass
class _Snapshot:
    """A program state at a shared pass-list prefix, plus its reports."""

    program: Program
    reports: dict[str, object]
    trace_passes: list[PassReport]


@dataclass
class _Plan:
    """One variant's lowered pass list with its prefix-sharing keys."""

    variant: BuildVariant
    passes: list[Pass]
    keys: tuple[str, ...]


def _resume_points(plans: Sequence[_Plan]) -> set[tuple[str, ...]]:
    """The prefixes builds will actually resume from: divergence points.

    Resuming always picks the *longest* snapshotted prefix of a plan's key
    list, so only each plan's maximal prefix shared with any other plan is
    worth snapshotting; snapshots at shorter shared prefixes would never be
    read back, wasting a full program clone each.
    """
    points: set[tuple[str, ...]] = set()
    for index, plan in enumerate(plans):
        best = 0
        for other_index, other in enumerate(plans):
            if other_index == index:
                continue
            common = 0
            for left, right in zip(plan.keys, other.keys):
                if left != right:
                    break
                common += 1
            best = max(best, common)
        if best:
            points.add(plan.keys[:best])
    return points


#: Passes whose output is worth snapshotting for *future* sweeps: the nesC
#: front end and the CCured stage are the expensive deterministic prefixes
#: variants actually share.  Cheaper tail passes (inline, cxprop, gcc) are
#: never a shared resume point across variants, so persisting them would
#: just pile up program clones.
_PERSISTENT_PREFIX_STAGES = ("nesc.", "ccured.")


def _persistent_points(plans: Sequence[_Plan]) -> set[tuple[str, ...]]:
    """Prefixes to keep alive in a cross-call snapshot store."""
    points: set[tuple[str, ...]] = set()
    for plan in plans:
        for index, pass_ in enumerate(plan.passes):
            if index + 1 >= len(plan.keys):
                break
            if pass_.name.startswith(_PERSISTENT_PREFIX_STAGES):
                points.add(plan.keys[:index + 1])
    return points


def persistent_prefixes(variant: BuildVariant) -> list[tuple[str, ...]]:
    """One variant's persistent snapshot points, shortest prefix first.

    These are the pass-list prefixes a cross-call (or cross-session —
    :class:`repro.store.ArtifactStore` persists them to disk) snapshot
    store keeps alive for the variant: every prefix ending at a nesC
    front-end or CCured stage.  A build of the variant resumes from the
    longest such prefix present in the store.
    """
    passes = variant_passes(variant)
    keys = tuple(pass_.cache_key(variant) for pass_ in passes)
    plan = _Plan(variant, passes, keys)
    return sorted(_persistent_points([plan]), key=len)


def _build_one_app(app_name: str, variants: Sequence[BuildVariant],
                   share_front_end: bool, keep_results: bool,
                   measure_sizes: bool = False,
                   app: Optional[Application] = None,
                   snapshots: Optional[dict[tuple[str, ...], _Snapshot]] = None,
                   ) -> list[SweepBuild]:
    """Build one application under every variant (worker-safe helper).

    Args:
        app: Prebuilt application object; looked up in the suite registry by
            ``app_name`` when omitted.
        snapshots: Cross-call snapshot store for this application.  When
            given, prefix snapshots from earlier calls are resumed from and
            the store is extended at the persistent stage boundaries
            (:data:`_PERSISTENT_PREFIX_STAGES`) for later calls.
    """
    builds: list[SweepBuild] = []
    if not share_front_end:
        for variant in variants:
            pipeline = BuildPipeline(variant, measure_sizes)
            if app is not None:
                result = pipeline.build(app, label=app_name)
            else:
                result = pipeline.build_named(app_name)
            builds.append(SweepBuild(app_name, variant.name, result.summary(),
                                     result if keep_results else None))
        return builds

    if app is None:
        app = suite.build_application(app_name)
    plans = []
    for variant in variants:
        passes = variant_passes(variant)
        keys = tuple(pass_.cache_key(variant) for pass_ in passes)
        plans.append(_Plan(variant, passes, keys))
    wanted = _resume_points(plans)

    if snapshots is None:
        snapshots = {}
    else:
        wanted |= _persistent_points(plans)
    for plan in plans:
        # Resume from the longest already-built shared prefix, if any.
        start = 0
        for length in range(len(plan.keys), 0, -1):
            snapshot = snapshots.get(plan.keys[:length])
            if snapshot is not None:
                start = length
                break

        ctx = PassContext(variant=plan.variant, application=app,
                          label=app_name)
        trace_passes: list[PassReport] = []
        if start:
            ctx.program = snapshot.program.clone()
            ctx.reports.update(snapshot.reports)
            trace_passes.extend(snapshot.trace_passes)

        manager = PassManager([], measure_sizes=measure_sizes)
        for index in range(start, len(plan.passes)):
            manager.passes = [plan.passes[index]]
            trace_passes.extend(manager.run(ctx).passes)
            prefix = plan.keys[:index + 1]
            if prefix in wanted and prefix not in snapshots and \
                    index + 1 < len(plan.passes) and ctx.program is not None:
                snapshots[prefix] = _Snapshot(ctx.program.clone(),
                                              dict(ctx.reports),
                                              list(trace_passes))

        trace = BuildTrace(
            passes=trace_passes,
            wall_time_s=sum(entry.wall_time_s for entry in trace_passes))
        result = result_from_context(ctx, trace)
        builds.append(SweepBuild(app_name, plan.variant.name, result.summary(),
                                 result if keep_results else None))
    return builds


def _build_one_app_summaries(app_name: str, variants: Sequence[BuildVariant],
                             share_front_end: bool) -> list[SweepBuild]:
    """Process-pool entry point: summaries only (results stay in the worker)."""
    return _build_one_app(app_name, variants, share_front_end,
                          keep_results=False)


class SweepRunner:
    """Builds N applications × M variants through the pass-manager layer.

    Args:
        apps: Figure application names (see ``repro.tinyos.suite``) or
            prebuilt :class:`~repro.nesc.application.Application` objects
            (labelled by their ``name``; in-process modes only).
        variants: Build variants, applied to every application in order.
        share_front_end: Build variants of an application from clones of
            shared pass-list-prefix snapshots — the nesC front end for every
            variant (grouped by ``suppress_norace``), and deeper prefixes
            (e.g. a common CCured stage) where variants agree.  With
            ``False`` every build runs the full pipeline independently —
            useful as the comparison baseline.
        processes: Opt-in process-pool mode: distribute applications over
            this many worker processes.  Builds then carry summaries only.
        measure_sizes: Record code/RAM sizes at pass boundaries in traces
            (slows the sweep down).
        snapshot_store: Cross-call prefix-snapshot cache keyed by
            application label.  Pass the same dict to successive runners and
            later sweeps resume from earlier sweeps' front-end (and CCured)
            snapshots instead of rebuilding them.  In-process modes only.
    """

    def __init__(self, apps: Sequence[Union[str, Application]],
                 variants: Sequence[BuildVariant],
                 *, share_front_end: bool = True,
                 processes: Optional[int] = None,
                 measure_sizes: bool = False,
                 snapshot_store: Optional[
                     dict[str, dict[tuple[str, ...], _Snapshot]]] = None):
        self.apps = list(apps)
        self.variants = list(variants)
        self.share_front_end = share_front_end
        self.processes = processes
        self.measure_sizes = measure_sizes
        self.snapshot_store = snapshot_store

    @staticmethod
    def _label_of(app: Union[str, Application]) -> str:
        return app if isinstance(app, str) else app.name

    def run(self) -> SweepResult:
        if self.processes:
            return self._run_process_pool()
        builds: list[SweepBuild] = []
        for app in self.apps:
            label = self._label_of(app)
            snapshots = None
            if self.snapshot_store is not None:
                snapshots = self.snapshot_store.setdefault(label, {})
            builds.extend(_build_one_app(
                label, self.variants, self.share_front_end,
                keep_results=True, measure_sizes=self.measure_sizes,
                app=None if isinstance(app, str) else app,
                snapshots=snapshots))
        return SweepResult(builds)

    def _run_process_pool(self) -> SweepResult:
        from concurrent.futures import ProcessPoolExecutor

        names = []
        for app in self.apps:
            if not isinstance(app, str):
                raise ValueError(
                    f"process-pool sweeps accept registered application "
                    f"names only, not Application objects ({app.name!r}); "
                    f"run it in-process instead")
            names.append(app)
        builds: list[SweepBuild] = []
        with ProcessPoolExecutor(max_workers=self.processes) as pool:
            futures = [pool.submit(_build_one_app_summaries, app_name,
                                   self.variants, self.share_front_end)
                       for app_name in names]
            for future in futures:
                builds.extend(future.result())
        return SweepResult(builds)
