"""Batched N-app × M-variant builds over shared pass-list prefixes.

Every figure of the paper is a sweep: each of the twelve applications built
under each of several variants.  Building them independently re-runs the
nesC front end (parse, flatten, simplify, type check, race analysis) once
per variant — and, for variants that also agree on their CCured
configuration, the whole instrumentation stage — even though those prefixes
of the pass list are deterministic functions of the application and the
pass configurations.

:class:`SweepRunner` exploits that: every pass declares a
:meth:`~repro.toolchain.passes.Pass.cache_key`, and variants whose pass
lists share a key prefix build from a fast
:meth:`~repro.cminor.program.Program.clone` of a snapshot taken at the
divergence point.  The front end (``nesc.flatten`` + ``nesc.hwrefactor``)
is the universal shared prefix; the three FLID-cured Figure 3 variants
additionally share the CCured stage.  Shared and unshared sweeps must
produce identical build summaries — ``benchmarks/bench_pipeline_sweep.py``
asserts this and records the speedup.

An opt-in process-pool mode (``processes=N``) distributes whole
applications across worker processes; since programs and images do not
cross process boundaries, process-pool builds carry summaries only
(``SweepBuild.result`` is ``None``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cminor.program import Program
from repro.tinyos import suite
from repro.toolchain.config import BuildVariant
from repro.toolchain.lower import variant_passes
from repro.toolchain.passes import (
    BuildTrace,
    Pass,
    PassContext,
    PassManager,
    PassReport,
)
from repro.toolchain.pipeline import BuildPipeline, BuildResult, \
    result_from_context


@dataclass
class SweepBuild:
    """One (application, variant) build of a sweep.

    ``result`` carries the full :class:`BuildResult` for in-process sweeps
    and is ``None`` in process-pool mode (programs do not cross process
    boundaries); ``summary`` is always present and identical to
    ``BuildResult.summary()``.
    """

    application: str
    variant_name: str
    summary: dict[str, object]
    result: Optional[BuildResult] = None


@dataclass
class SweepResult:
    """All builds of one sweep, in (application, variant) order."""

    builds: list[SweepBuild] = field(default_factory=list)

    def get(self, application: str, variant_name: str) -> SweepBuild:
        for build in self.builds:
            if build.application == application and \
                    build.variant_name == variant_name:
                return build
        raise KeyError(f"no build for {application!r} / {variant_name!r}")

    def summaries(self) -> list[dict[str, object]]:
        return [build.summary for build in self.builds]

    def __len__(self) -> int:
        return len(self.builds)

    def __iter__(self):
        return iter(self.builds)


@dataclass
class _Snapshot:
    """A program state at a shared pass-list prefix, plus its reports."""

    program: Program
    reports: dict[str, object]
    trace_passes: list[PassReport]


@dataclass
class _Plan:
    """One variant's lowered pass list with its prefix-sharing keys."""

    variant: BuildVariant
    passes: list[Pass]
    keys: tuple[str, ...]


def _resume_points(plans: Sequence[_Plan]) -> set[tuple[str, ...]]:
    """The prefixes builds will actually resume from: divergence points.

    Resuming always picks the *longest* snapshotted prefix of a plan's key
    list, so only each plan's maximal prefix shared with any other plan is
    worth snapshotting; snapshots at shorter shared prefixes would never be
    read back, wasting a full program clone each.
    """
    points: set[tuple[str, ...]] = set()
    for index, plan in enumerate(plans):
        best = 0
        for other_index, other in enumerate(plans):
            if other_index == index:
                continue
            common = 0
            for left, right in zip(plan.keys, other.keys):
                if left != right:
                    break
                common += 1
            best = max(best, common)
        if best:
            points.add(plan.keys[:best])
    return points


def _build_one_app(app_name: str, variants: Sequence[BuildVariant],
                   share_front_end: bool, keep_results: bool,
                   measure_sizes: bool = False) -> list[SweepBuild]:
    """Build one application under every variant (worker-safe helper)."""
    builds: list[SweepBuild] = []
    if not share_front_end:
        for variant in variants:
            result = BuildPipeline(variant, measure_sizes).build_named(app_name)
            builds.append(SweepBuild(app_name, variant.name, result.summary(),
                                     result if keep_results else None))
        return builds

    app = suite.build_application(app_name)
    plans = []
    for variant in variants:
        passes = variant_passes(variant)
        keys = tuple(pass_.cache_key(variant) for pass_ in passes)
        plans.append(_Plan(variant, passes, keys))
    wanted = _resume_points(plans)

    snapshots: dict[tuple[str, ...], _Snapshot] = {}
    for plan in plans:
        # Resume from the longest already-built shared prefix, if any.
        start = 0
        for length in range(len(plan.keys), 0, -1):
            snapshot = snapshots.get(plan.keys[:length])
            if snapshot is not None:
                start = length
                break

        ctx = PassContext(variant=plan.variant, application=app,
                          label=app_name)
        trace_passes: list[PassReport] = []
        if start:
            ctx.program = snapshot.program.clone()
            ctx.reports.update(snapshot.reports)
            trace_passes.extend(snapshot.trace_passes)

        manager = PassManager([], measure_sizes=measure_sizes)
        for index in range(start, len(plan.passes)):
            manager.passes = [plan.passes[index]]
            trace_passes.extend(manager.run(ctx).passes)
            prefix = plan.keys[:index + 1]
            if prefix in wanted and prefix not in snapshots and \
                    index + 1 < len(plan.passes) and ctx.program is not None:
                snapshots[prefix] = _Snapshot(ctx.program.clone(),
                                              dict(ctx.reports),
                                              list(trace_passes))

        trace = BuildTrace(
            passes=trace_passes,
            wall_time_s=sum(entry.wall_time_s for entry in trace_passes))
        result = result_from_context(ctx, trace)
        builds.append(SweepBuild(app_name, plan.variant.name, result.summary(),
                                 result if keep_results else None))
    return builds


def _build_one_app_summaries(app_name: str, variants: Sequence[BuildVariant],
                             share_front_end: bool) -> list[SweepBuild]:
    """Process-pool entry point: summaries only (results stay in the worker)."""
    return _build_one_app(app_name, variants, share_front_end,
                          keep_results=False)


class SweepRunner:
    """Builds N applications × M variants through the pass-manager layer.

    Args:
        apps: Figure application names (see ``repro.tinyos.suite``).
        variants: Build variants, applied to every application in order.
        share_front_end: Build variants of an application from clones of
            shared pass-list-prefix snapshots — the nesC front end for every
            variant (grouped by ``suppress_norace``), and deeper prefixes
            (e.g. a common CCured stage) where variants agree.  With
            ``False`` every build runs the full pipeline independently —
            useful as the comparison baseline.
        processes: Opt-in process-pool mode: distribute applications over
            this many worker processes.  Builds then carry summaries only.
        measure_sizes: Record code/RAM sizes at pass boundaries in traces
            (slows the sweep down).
    """

    def __init__(self, apps: Sequence[str], variants: Sequence[BuildVariant],
                 *, share_front_end: bool = True,
                 processes: Optional[int] = None,
                 measure_sizes: bool = False):
        self.apps = list(apps)
        self.variants = list(variants)
        self.share_front_end = share_front_end
        self.processes = processes
        self.measure_sizes = measure_sizes

    def run(self) -> SweepResult:
        if self.processes:
            return self._run_process_pool()
        builds: list[SweepBuild] = []
        for app_name in self.apps:
            builds.extend(_build_one_app(app_name, self.variants,
                                         self.share_front_end,
                                         keep_results=True,
                                         measure_sizes=self.measure_sizes))
        return SweepResult(builds)

    def _run_process_pool(self) -> SweepResult:
        from concurrent.futures import ProcessPoolExecutor

        builds: list[SweepBuild] = []
        with ProcessPoolExecutor(max_workers=self.processes) as pool:
            futures = [pool.submit(_build_one_app_summaries, app_name,
                                   self.variants, self.share_front_end)
                       for app_name in self.apps]
            for future in futures:
                builds.extend(future.result())
        return SweepResult(builds)
