"""Simulation contexts for the duty-cycle experiment.

Section 3.4: "For each application, we created a reasonable sensor network
context for it to run in."  Applications that only react to traffic need a
peer that generates it; base stations additionally need serial traffic; the
self-driven applications (timers, sensing) need nothing beyond their own
clocks.  The mapping below provides that context for every benchmark
application.
"""

from __future__ import annotations

from typing import Optional

from repro.avrora.network import TrafficGenerator
from repro.tinyos import messages as msgs

#: Simulated duration (seconds) used by the duty-cycle benchmarks.  The
#: paper simulates three minutes; the workloads here are strictly periodic,
#: so a shorter window yields the same duty cycle at a fraction of the cost.
DEFAULT_DUTY_CYCLE_SECONDS = 4.0


def duty_cycle_context(figure_app_name: str) -> Optional[TrafficGenerator]:
    """The traffic generator (if any) used when measuring ``figure_app_name``."""
    base_name = figure_app_name.split("_")[0]
    if base_name in ("RfmToLeds",):
        return TrafficGenerator(radio_period_s=0.25,
                                am_type=msgs.AM_INT_MSG,
                                payload=bytes([5, 0]))
    if base_name in ("RadioCountToLeds",):
        return TrafficGenerator(radio_period_s=0.25,
                                am_type=msgs.AM_COUNT,
                                payload=bytes([9, 0]))
    if base_name == "GenericBase":
        return TrafficGenerator(radio_period_s=0.5, uart_period_s=0.5,
                                am_type=msgs.AM_INT_MSG,
                                payload=bytes([7, 0]))
    if base_name == "Ident":
        return TrafficGenerator(radio_period_s=1.0,
                                am_type=msgs.AM_IDENT,
                                payload=bytes([2, 0]) + b"peer-mote-name-x")
    if base_name == "Surge":
        # A neighbour advertising a route (hop count 1) plus forwarded data.
        payload = bytes([2, 0, 2, 0, 1, 0, 1])
        return TrafficGenerator(radio_period_s=1.0,
                                am_type=msgs.AM_MULTIHOP,
                                payload=payload)
    if base_name == "TestTimeStamping":
        payload = bytes([2, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        return TrafficGenerator(radio_period_s=1.0,
                                am_type=msgs.AM_TIMESTAMP,
                                payload=payload)
    return None
