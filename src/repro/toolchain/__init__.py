"""The Safe TinyOS toolchain: Figure 1 of the paper as a library.

The stages — nesC flattening, hardware register refactoring, CCured, the
inliner, cXprop, and the GCC-strength backend — are registered passes
(:mod:`repro.toolchain.passes`); a
:class:`~repro.toolchain.config.BuildVariant` lowers to a pass list
(:mod:`repro.toolchain.lower`).  ``BuildPipeline`` is the single-build
facade over that machinery, ``SweepRunner`` the batched N-app × M-variant
runner with front-end sharing.  The predefined variants in
:mod:`repro.toolchain.variants` correspond to the bars of Figures 2 and 3.
"""

from repro.toolchain.config import BuildVariant
from repro.toolchain.passes import (
    BuildTrace,
    FixpointPass,
    Pass,
    PassContext,
    PassManager,
    PassOutcome,
    PassReport,
    create_pass,
    register_pass,
    registered_passes,
)
from repro.toolchain.lower import (
    back_end_passes,
    front_end_passes,
    variant_pass_names,
    variant_passes,
)
from repro.toolchain.pipeline import BuildPipeline, BuildResult
from repro.toolchain.sweep import SweepBuild, SweepResult, SweepRunner
from repro.toolchain.variants import (
    BASELINE,
    FIGURE2_STRATEGIES,
    FIGURE3_VARIANTS,
    SAFE_OPTIMIZED,
    UNSAFE_OPTIMIZED,
    variant_by_name,
)
from repro.toolchain.contexts import duty_cycle_context

__all__ = [
    "BuildVariant",
    "BuildPipeline",
    "BuildResult",
    "BuildTrace",
    "Pass",
    "PassContext",
    "PassManager",
    "PassOutcome",
    "PassReport",
    "FixpointPass",
    "register_pass",
    "registered_passes",
    "create_pass",
    "front_end_passes",
    "back_end_passes",
    "variant_passes",
    "variant_pass_names",
    "SweepRunner",
    "SweepResult",
    "SweepBuild",
    "BASELINE",
    "SAFE_OPTIMIZED",
    "UNSAFE_OPTIMIZED",
    "FIGURE2_STRATEGIES",
    "FIGURE3_VARIANTS",
    "variant_by_name",
    "duty_cycle_context",
]
