"""The Safe TinyOS toolchain: Figure 1 of the paper as a library.

``BuildPipeline`` strings together the stages — nesC flattening, hardware
register refactoring, CCured, the inliner, cXprop, and the GCC-strength
backend — according to a :class:`~repro.toolchain.config.BuildVariant`.
The predefined variants in :mod:`repro.toolchain.variants` correspond to the
bars of Figures 2 and 3.
"""

from repro.toolchain.config import BuildVariant
from repro.toolchain.pipeline import BuildPipeline, BuildResult
from repro.toolchain.variants import (
    BASELINE,
    FIGURE2_STRATEGIES,
    FIGURE3_VARIANTS,
    SAFE_OPTIMIZED,
    UNSAFE_OPTIMIZED,
    variant_by_name,
)
from repro.toolchain.contexts import duty_cycle_context

__all__ = [
    "BuildVariant",
    "BuildPipeline",
    "BuildResult",
    "BASELINE",
    "SAFE_OPTIMIZED",
    "UNSAFE_OPTIMIZED",
    "FIGURE2_STRATEGIES",
    "FIGURE3_VARIANTS",
    "variant_by_name",
    "duty_cycle_context",
]
