"""Report formatting for the evaluation harnesses.

The benchmark scripts print the same rows the paper's figures plot: per
application, the percentage change of a metric relative to the unsafe,
unoptimized baseline, with the baseline's absolute value alongside (the
numbers printed across the top of each figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class FigureSeries:
    """One bar series of a figure: a label plus one value per application."""

    label: str
    values: dict[str, float] = field(default_factory=dict)


@dataclass
class FigureTable:
    """A figure reconstructed as a table: applications x series."""

    title: str
    metric: str
    applications: list[str] = field(default_factory=list)
    baselines: dict[str, float] = field(default_factory=dict)
    series: list[FigureSeries] = field(default_factory=list)

    def add_series(self, label: str) -> FigureSeries:
        series = FigureSeries(label=label)
        self.series.append(series)
        return series

    def rows(self) -> list[dict[str, object]]:
        """One row per application: baseline plus each series value."""
        rows: list[dict[str, object]] = []
        for app in self.applications:
            row: dict[str, object] = {
                "application": app,
                "baseline": self.baselines.get(app, 0.0),
            }
            for series in self.series:
                row[series.label] = series.values.get(app)
            rows.append(row)
        return rows

    def format(self, value_format: str = "{:+.1f}%") -> str:
        """Render the table as fixed-width text (used by the benchmarks)."""
        label_width = max([len("application")] +
                          [len(app) for app in self.applications])
        series_width = max([12] + [len(s.label) for s in self.series]) + 2
        lines = [self.title, "=" * len(self.title)]
        header = (f"{'application'.ljust(label_width)}  {'baseline':>10}  "
                  + "".join(s.label.rjust(series_width) for s in self.series))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows():
            cells = [str(row["application"]).ljust(label_width),
                     f"{row['baseline']:>10.2f}"]
            for series in self.series:
                value = row[series.label]
                if value is None:
                    cells.append("-".rjust(series_width))
                else:
                    cells.append(value_format.format(value).rjust(series_width))
            lines.append("  ".join(cells))
        return "\n".join(lines)


def percent_change(value: float, baseline: float) -> float:
    """Percentage change of ``value`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return 100.0 * (value - baseline) / baseline


def clip(value: float, lower: float, upper: float) -> float:
    """Clip a value into a range (the paper clips Figure 3(b) at +100%)."""
    return max(lower, min(upper, value))


def format_rows(rows: Iterable[dict[str, object]]) -> str:
    """Simple key=value formatting for ad-hoc report lines."""
    lines = []
    for row in rows:
        lines.append("  ".join(f"{key}={value}" for key, value in row.items()))
    return "\n".join(lines)
