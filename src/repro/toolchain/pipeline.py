"""The build pipeline (Figure 1 of the paper).

``BuildPipeline`` is a thin compatibility facade over the pass-manager
layer: a :class:`~repro.toolchain.config.BuildVariant` is lowered to a pass
list (:mod:`repro.toolchain.lower`), a
:class:`~repro.toolchain.passes.PassManager` executes it, and the per-stage
reports are repackaged into the :class:`BuildResult` the benchmark
harnesses consume.  The stages run in the paper's order:

1. the nesC compiler (flattening + concurrency analysis),
2. hardware-register access refactoring,
3. CCured (kind inference, check insertion, locks, runtime, messages/FLIDs),
4. CCured's own check optimizer,
5. the source-to-source inliner,
6. cXprop (a fixpoint pass over facts/fold/copyprop/atomic/dce),
7. the GCC-strength backend and image accounting.

For batched N-app × M-variant builds, use
:class:`~repro.toolchain.sweep.SweepRunner`, which shares one front-end
program per application across variants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.backend.gcc_opt import GccOptReport
from repro.backend.image import MemoryImage
from repro.ccured.instrument import CCuredResult
from repro.ccured.runtime import RUNTIME_UNIT
from repro.cminor.program import Program
from repro.cxprop.driver import CxpropReport
from repro.cxprop.inline import InlineReport
from repro.nesc.application import Application
from repro.nesc.hwrefactor import HwRefactorReport
from repro.tinyos import suite
from repro.toolchain.config import BuildVariant
from repro.toolchain.lower import front_end_passes, variant_passes
from repro.toolchain.passes import BuildTrace, PassContext, PassManager
from repro.toolchain.variants import BASELINE


@dataclass
class BuildResult:
    """Everything produced by building one application with one variant."""

    application: str
    variant: BuildVariant
    program: Program
    image: MemoryImage
    hw_refactor: Optional[HwRefactorReport] = None
    ccured: Optional[CCuredResult] = None
    ccured_optimizer_removed: int = 0
    inline: Optional[InlineReport] = None
    cxprop: Optional[CxpropReport] = None
    gcc: Optional[GccOptReport] = None
    trace: Optional[BuildTrace] = None

    @property
    def checks_inserted(self) -> int:
        return self.ccured.checks_inserted if self.ccured is not None else 0

    @property
    def checks_surviving(self) -> int:
        return len(self.image.surviving_checks)

    @property
    def checks_removed_fraction(self) -> float:
        """Fraction of CCured's checks eliminated by the build (Figure 2)."""
        inserted = self.checks_inserted
        if inserted == 0:
            return 0.0
        return (inserted - self.checks_surviving) / inserted

    def runtime_footprint(self) -> tuple[int, int]:
        """(ROM, RAM) bytes attributable to the CCured runtime library."""
        runtime_functions = {f.name for f in self.program.iter_functions()
                             if f.origin == RUNTIME_UNIT}
        runtime_globals = {v.name for v in self.program.iter_globals()
                           if v.origin == RUNTIME_UNIT}
        return self.image.footprint_of(runtime_functions, runtime_globals)

    def summary(self) -> dict[str, object]:
        return {
            "application": self.application,
            "variant": self.variant.name,
            "code_bytes": self.image.code_bytes,
            "ram_bytes": self.image.ram_bytes,
            "checks_inserted": self.checks_inserted,
            "checks_surviving": self.checks_surviving,
        }


def result_from_context(ctx: PassContext,
                        trace: Optional[BuildTrace] = None) -> BuildResult:
    """Assemble a :class:`BuildResult` from an executed pass context."""
    assert ctx.program is not None and ctx.image is not None, \
        "the pass list did not produce a program and an image"
    assert ctx.variant is not None
    ccured = ctx.reports.get("ccured.cure")
    if ccured is not None and ccured.program is not ctx.program:
        # The CCured stage ran on a shared prefix program (sweep runner):
        # re-point the report at this build's own program so the historical
        # ``result.ccured.program is result.program`` invariant holds.
        ccured = replace(ccured, program=ctx.program)
    return BuildResult(
        application=ctx.label or ctx.program.name,
        variant=ctx.variant,
        program=ctx.program,
        image=ctx.image,
        hw_refactor=ctx.reports.get("nesc.hwrefactor"),
        ccured=ccured,
        ccured_optimizer_removed=ctx.reports.get("ccured.optimize", 0),
        inline=ctx.reports.get("inline"),
        cxprop=ctx.reports.get("cxprop"),
        gcc=ctx.reports.get("gcc"),
        trace=trace,
    )


class BuildPipeline:
    """Builds applications according to a :class:`BuildVariant`.

    Args:
        variant: The build variant (defaults to the unsafe baseline).
        measure_sizes: Record code/RAM bytes at every pass boundary in the
            result's :class:`~repro.toolchain.passes.BuildTrace` (slower;
            meant for tracing and ablations, not sweeps).
    """

    def __init__(self, variant: Optional[BuildVariant] = None,
                 measure_sizes: bool = False):
        self.variant = variant or BASELINE
        self.measure_sizes = measure_sizes

    # -- stage 1+2: front end ------------------------------------------------------

    def front_end(self, app: Application) -> tuple[Program, HwRefactorReport]:
        """Run the nesC compiler and the hardware-register refactoring."""
        ctx = PassContext(variant=self.variant, application=app, label=app.name)
        PassManager(front_end_passes(self.variant)).run(ctx)
        return ctx.program, ctx.reports["nesc.hwrefactor"]

    # -- full build ------------------------------------------------------------------

    def build(self, app: Application, label: Optional[str] = None) -> BuildResult:
        """Build ``app`` with this pipeline's variant.

        Args:
            app: The wired application.
            label: Figure label recorded as ``result.application`` (defaults
                to the application's own name).
        """
        ctx = PassContext(variant=self.variant, application=app,
                          label=label or app.name)
        trace = PassManager(variant_passes(self.variant),
                            measure_sizes=self.measure_sizes).run(ctx)
        return result_from_context(ctx, trace)

    def build_named(self, figure_app_name: str) -> BuildResult:
        """Build one of the registered benchmark applications by figure label."""
        app = suite.build_application(figure_app_name)
        return self.build(app, label=figure_app_name)


def build_application(figure_app_name: str,
                      variant: Optional[BuildVariant] = None) -> BuildResult:
    """Convenience wrapper: build a registered application with ``variant``."""
    return BuildPipeline(variant).build_named(figure_app_name)
