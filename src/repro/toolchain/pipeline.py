"""The build pipeline (Figure 1 of the paper).

``BuildPipeline.build`` runs the stages in the paper's order:

1. the nesC compiler (flattening + concurrency analysis),
2. hardware-register access refactoring,
3. CCured (kind inference, check insertion, locks, runtime, messages/FLIDs),
4. CCured's own check optimizer,
5. the source-to-source inliner,
6. cXprop,
7. the GCC-strength backend and image accounting.

Every stage's report is captured in the returned :class:`BuildResult`, which
is also what the benchmark harnesses consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.backend.gcc_opt import GccOptReport, gcc_optimize
from repro.backend.image import MemoryImage, build_image
from repro.backend.target import cost_model_for
from repro.ccured.config import CCuredConfig
from repro.ccured.instrument import CCuredResult, cure, surviving_check_ids
from repro.ccured.optimizer import optimize_checks
from repro.ccured.runtime import RUNTIME_UNIT
from repro.cminor.program import Program
from repro.cxprop.driver import CxpropConfig, CxpropReport, optimize_program
from repro.cxprop.inline import InlineReport, inline_program
from repro.nesc.application import Application
from repro.nesc.flatten import flatten_application
from repro.nesc.hwrefactor import HwRefactorReport, refactor_hardware_accesses
from repro.tinyos import suite
from repro.toolchain.config import BuildVariant
from repro.toolchain.variants import BASELINE


@dataclass
class BuildResult:
    """Everything produced by building one application with one variant."""

    application: str
    variant: BuildVariant
    program: Program
    image: MemoryImage
    hw_refactor: Optional[HwRefactorReport] = None
    ccured: Optional[CCuredResult] = None
    ccured_optimizer_removed: int = 0
    inline: Optional[InlineReport] = None
    cxprop: Optional[CxpropReport] = None
    gcc: Optional[GccOptReport] = None

    @property
    def checks_inserted(self) -> int:
        return self.ccured.checks_inserted if self.ccured is not None else 0

    @property
    def checks_surviving(self) -> int:
        return len(self.image.surviving_checks)

    @property
    def checks_removed_fraction(self) -> float:
        """Fraction of CCured's checks eliminated by the build (Figure 2)."""
        inserted = self.checks_inserted
        if inserted == 0:
            return 0.0
        return (inserted - self.checks_surviving) / inserted

    def runtime_footprint(self) -> tuple[int, int]:
        """(ROM, RAM) bytes attributable to the CCured runtime library."""
        runtime_functions = {f.name for f in self.program.iter_functions()
                             if f.origin == RUNTIME_UNIT}
        runtime_globals = {v.name for v in self.program.iter_globals()
                           if v.origin == RUNTIME_UNIT}
        return self.image.footprint_of(runtime_functions, runtime_globals)

    def summary(self) -> dict[str, object]:
        return {
            "application": self.application,
            "variant": self.variant.name,
            "code_bytes": self.image.code_bytes,
            "ram_bytes": self.image.ram_bytes,
            "checks_inserted": self.checks_inserted,
            "checks_surviving": self.checks_surviving,
        }


class BuildPipeline:
    """Builds applications according to a :class:`BuildVariant`."""

    def __init__(self, variant: Optional[BuildVariant] = None):
        self.variant = variant or BASELINE

    # -- stage 1+2: front end ------------------------------------------------------

    def front_end(self, app: Application) -> tuple[Program, HwRefactorReport]:
        """Run the nesC compiler and the hardware-register refactoring."""
        program = flatten_application(app,
                                      suppress_norace=self.variant.suppress_norace)
        report = refactor_hardware_accesses(program)
        return program, report

    # -- full build ------------------------------------------------------------------

    def build(self, app: Application) -> BuildResult:
        """Build ``app`` with this pipeline's variant."""
        variant = self.variant
        program, hw_report = self.front_end(app)

        ccured_result: Optional[CCuredResult] = None
        ccured_opt_removed = 0
        if variant.safe:
            config = CCuredConfig(
                message_strategy=variant.message_strategy,
                runtime_mode=variant.runtime_mode,
                insert_locks=variant.insert_locks,
                run_optimizer=False,
                application_name=app.name,
            )
            ccured_result = cure(program, config)
            if variant.run_ccured_optimizer:
                ccured_opt_removed = optimize_checks(program)

        inline_report: Optional[InlineReport] = None
        if variant.run_inliner:
            inline_report = inline_program(program)

        cxprop_report: Optional[CxpropReport] = None
        if variant.run_cxprop:
            cxprop_report = optimize_program(
                program, CxpropConfig(domain=variant.cxprop_domain))

        gcc_report = gcc_optimize(program)
        image = build_image(program, cost_model_for(program.platform))

        return BuildResult(
            application=app.name,
            variant=variant,
            program=program,
            image=image,
            hw_refactor=hw_report,
            ccured=ccured_result,
            ccured_optimizer_removed=ccured_opt_removed,
            inline=inline_report,
            cxprop=cxprop_report,
            gcc=gcc_report,
        )

    def build_named(self, figure_app_name: str) -> BuildResult:
        """Build one of the registered benchmark applications by figure label."""
        app = suite.build_application(figure_app_name)
        result = self.build(app)
        result.application = figure_app_name
        return result


def build_application(figure_app_name: str,
                      variant: Optional[BuildVariant] = None) -> BuildResult:
    """Convenience wrapper: build a registered application with ``variant``."""
    return BuildPipeline(variant).build_named(figure_app_name)
