"""The predefined build variants used by the paper's evaluation.

``FIGURE3_VARIANTS`` are the seven bars of Figures 3(a)/3(b), in order, plus
the unsafe/unoptimized baseline they are measured against.
``FIGURE2_STRATEGIES`` are the four optimizer combinations of Figure 2.
"""

from __future__ import annotations

from repro.ccured.config import MessageStrategy, RuntimeMode
from repro.toolchain.config import BuildVariant

#: The measurement baseline of every figure: the original, unsafe,
#: unoptimized TinyOS application, compiled by the stock toolchain.
BASELINE = BuildVariant(
    name="baseline",
    description="Unsafe, unoptimized (original TinyOS toolchain)",
    safe=False,
    run_ccured_optimizer=False,
)

#: Figure 3 bar 1: CCured with full file/line/function failure messages.
SAFE_VERBOSE = BuildVariant(
    name="safe-verbose",
    description="Safe, verbose error messages",
    message_strategy=MessageStrategy.VERBOSE,
)

#: Figure 3 bar 2: the same strings, explicitly placed in flash.
SAFE_VERBOSE_ROM = BuildVariant(
    name="safe-verbose-rom",
    description="Safe, verbose error messages in ROM",
    message_strategy=MessageStrategy.VERBOSE_ROM,
)

#: Figure 3 bar 3: CCured's --terse messages (source locations stripped).
SAFE_TERSE = BuildVariant(
    name="safe-terse",
    description="Safe, terse error messages",
    message_strategy=MessageStrategy.TERSE,
)

#: Figure 3 bar 4: failure messages compressed to 16-bit FLIDs.
SAFE_FLID = BuildVariant(
    name="safe-flid",
    description="Safe, error messages compressed as FLIDs",
    message_strategy=MessageStrategy.FLID,
)

#: Figure 3 bar 5: FLIDs plus cXprop (no separate inlining pass).
SAFE_FLID_CXPROP = BuildVariant(
    name="safe-flid-cxprop",
    description="Safe, FLIDs, optimized by cXprop",
    message_strategy=MessageStrategy.FLID,
    run_cxprop=True,
)

#: Figure 3 bar 6: FLIDs, inlined, then optimized by cXprop — the headline
#: Safe TinyOS configuration.
SAFE_OPTIMIZED = BuildVariant(
    name="safe-optimized",
    description="Safe, FLIDs, inlined and then optimized by cXprop",
    message_strategy=MessageStrategy.FLID,
    run_inliner=True,
    run_cxprop=True,
)

#: Figure 3 bar 7: the unsafe program given the same optimization budget.
UNSAFE_OPTIMIZED = BuildVariant(
    name="unsafe-optimized",
    description="Unsafe, inlined and then optimized by cXprop",
    safe=False,
    run_inliner=True,
    run_cxprop=True,
)

#: Section 2.3: the naive port of the desktop CCured runtime.
SAFE_FULL_RUNTIME = BuildVariant(
    name="safe-full-runtime",
    description="Safe, verbose messages, naive (desktop) runtime port",
    message_strategy=MessageStrategy.VERBOSE,
    runtime_mode=RuntimeMode.FULL,
)

#: The seven safe/optimized bars of Figures 3(a) and 3(b), in figure order.
FIGURE3_VARIANTS: list[BuildVariant] = [
    SAFE_VERBOSE,
    SAFE_VERBOSE_ROM,
    SAFE_TERSE,
    SAFE_FLID,
    SAFE_FLID_CXPROP,
    SAFE_OPTIMIZED,
    UNSAFE_OPTIMIZED,
]

# ---------------------------------------------------------------------------
# Figure 2: which optimizers get to remove CCured's checks.
# All four strategies start from the raw CCured instrumentation (no CCured
# optimizer), matching the check counts printed above the figure.
# ---------------------------------------------------------------------------

FIG2_GCC_ONLY = BuildVariant(
    name="fig2-gcc",
    description="gcc",
    message_strategy=MessageStrategy.FLID,
    run_ccured_optimizer=False,
)

FIG2_CCURED_OPT = BuildVariant(
    name="fig2-ccured-gcc",
    description="CCured optimizer + gcc",
    message_strategy=MessageStrategy.FLID,
    run_ccured_optimizer=True,
)

FIG2_CXPROP = BuildVariant(
    name="fig2-ccured-cxprop-gcc",
    description="CCured optimizer + cXprop + gcc",
    message_strategy=MessageStrategy.FLID,
    run_ccured_optimizer=True,
    run_cxprop=True,
)

FIG2_INLINE_CXPROP = BuildVariant(
    name="fig2-ccured-inline-cxprop-gcc",
    description="CCured optimizer + inlining + cXprop + gcc",
    message_strategy=MessageStrategy.FLID,
    run_ccured_optimizer=True,
    run_inliner=True,
    run_cxprop=True,
)

#: The four strategies of Figure 2, in figure order.
FIGURE2_STRATEGIES: list[BuildVariant] = [
    FIG2_GCC_ONLY,
    FIG2_CCURED_OPT,
    FIG2_CXPROP,
    FIG2_INLINE_CXPROP,
]

_ALL_VARIANTS = {
    variant.name: variant
    for variant in [BASELINE, SAFE_FULL_RUNTIME, *FIGURE3_VARIANTS,
                    *FIGURE2_STRATEGIES]
}


def variant_by_name(name: str) -> BuildVariant:
    """Look up any predefined variant by its short name."""
    try:
        return _ALL_VARIANTS[name]
    except KeyError:
        raise KeyError(f"unknown build variant {name!r}; known: "
                       f"{sorted(_ALL_VARIANTS)}") from None


def all_variant_names() -> list[str]:
    return sorted(_ALL_VARIANTS)
