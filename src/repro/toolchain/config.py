"""Build-variant configuration.

A :class:`BuildVariant` selects which pipeline stages run and how CCured is
configured.  Each bar in the paper's Figures 2 and 3 is one variant; the
predefined set lives in :mod:`repro.toolchain.variants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ccured.config import MessageStrategy, RuntimeMode


@dataclass(frozen=True)
class BuildVariant:
    """One way of building an application.

    Attributes:
        name: Short identifier used in reports and benchmark output.
        description: Human-readable summary (matches the figure legends).
        safe: Whether CCured runs at all (safe vs. unsafe builds).
        message_strategy: How failure messages are encoded (safe builds).
        runtime_mode: Which CCured runtime library is linked (safe builds).
        run_ccured_optimizer: Run CCured's own redundant-check optimizer.
        insert_locks: Protect checks on racy variables with atomic sections.
        run_inliner: Run the source-to-source inliner before cXprop.
        run_cxprop: Run the cXprop whole-program optimizer.
        cxprop_domain: Abstract domain used by cXprop.
        suppress_norace: Ignore ``norace`` annotations in the nesC race
            analysis (required for soundness of safe builds; Section 2.2).
    """

    name: str
    description: str = ""
    safe: bool = True
    message_strategy: MessageStrategy = MessageStrategy.FLID
    runtime_mode: RuntimeMode = RuntimeMode.TRIMMED
    run_ccured_optimizer: bool = True
    insert_locks: bool = True
    run_inliner: bool = False
    run_cxprop: bool = False
    cxprop_domain: str = "interval"
    suppress_norace: bool = True

    def describe(self) -> str:
        parts: list[str] = ["safe" if self.safe else "unsafe"]
        if self.safe:
            parts.append(f"messages={self.message_strategy.value}")
            parts.append(f"runtime={self.runtime_mode.value}")
            if self.run_ccured_optimizer:
                parts.append("ccured-opt")
        if self.run_inliner:
            parts.append("inline")
        if self.run_cxprop:
            parts.append(f"cxprop[{self.cxprop_domain}]")
        parts.append("gcc")
        return " + ".join(parts)
