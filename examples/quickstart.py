#!/usr/bin/env python
"""Quickstart: make a TinyOS application safe and run it.

Builds the classic BlinkTask application three ways — the unsafe baseline,
plain CCured, and the full Safe TinyOS pipeline (CCured + inliner + cXprop)
— then simulates each image for a couple of virtual seconds and prints the
numbers the paper cares about: code size, static RAM, surviving checks and
processor duty cycle.

This is the ``repro.api`` way: declarative specs in, typed records out.
The :class:`~repro.api.Workbench` session routes all three builds through
the sweep runner, so they share one nesC front end (and the two safe builds
share their CCured stage); every record round-trips through JSON —
``python -m repro build BlinkTask_Mica2 --json`` prints exactly the
``to_dict()`` form shown at the bottom.
"""

import json

from repro.api import BuildRecord, SimSpec, SweepSpec, Workbench

APP = "BlinkTask_Mica2"
VARIANTS = ("baseline", "safe-flid", "safe-optimized")
SIM_SECONDS = 2.0


def main() -> None:
    with Workbench() as bench:
        print(f"Building {APP} with {len(VARIANTS)} build variants\n")
        records = bench.sweep(SweepSpec(apps=(APP,), variants=VARIANTS))

        header = (f"{'variant':18s} {'code (B)':>9s} {'RAM (B)':>8s} "
                  f"{'checks':>7s} {'duty cycle':>11s} {'LED changes':>12s}")
        print(header)
        print("-" * len(header))
        for record in records:
            run = bench.simulate(SimSpec(app=APP, variant=record.variant,
                                         seconds=SIM_SECONDS))
            checks = (f"{record.checks_surviving}/{record.checks_inserted}"
                      if record.checks_inserted else "-")
            print(f"{record.variant:18s} {record.code_bytes:9d} "
                  f"{record.ram_bytes:8d} {checks:>7s} "
                  f"{run.duty_cycle * 100:10.3f}% {run.led_changes:12d}")

        print("\nThe safe, optimized build keeps the program's behaviour (same")
        print("LED activity), removes most of CCured's run-time checks, and")
        print("costs about as much CPU and memory as the original unsafe")
        print("program.\n")

        # Records are plain data: they serialize to JSON and load back equal.
        optimized = records[-1]
        wire = json.dumps(optimized.to_dict())
        assert BuildRecord.from_dict(json.loads(wire)) == optimized
        print("The same record as JSON (what `python -m repro build "
              f"{APP} --json` prints):")
        print(json.dumps(optimized.to_dict(), indent=2))


if __name__ == "__main__":
    main()
