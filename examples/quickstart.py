#!/usr/bin/env python
"""Quickstart: make a TinyOS application safe and run it.

Builds the classic BlinkTask application three ways — the unsafe baseline,
plain CCured, and the full Safe TinyOS pipeline (CCured + inliner + cXprop)
— then simulates each image for a couple of virtual seconds and prints the
numbers the paper cares about: code size, static RAM, surviving checks and
processor duty cycle.
"""

from repro import SafeTinyOS
from repro.toolchain import BASELINE, variant_by_name


def main() -> None:
    system = SafeTinyOS()
    app = "BlinkTask_Mica2"
    variants = [BASELINE, variant_by_name("safe-flid"),
                variant_by_name("safe-optimized")]

    print(f"Building {app} with {len(variants)} build variants\n")
    header = (f"{'variant':18s} {'code (B)':>9s} {'RAM (B)':>8s} "
              f"{'checks':>7s} {'duty cycle':>11s} {'red toggles':>12s}")
    print(header)
    print("-" * len(header))

    for variant in variants:
        outcome = system.build(app, variant)
        run = system.simulate(outcome, seconds=2.0)
        checks = (f"{outcome.checks_surviving}/{outcome.checks_inserted}"
                  if outcome.checks_inserted else "-")
        print(f"{variant.name:18s} {outcome.code_bytes:9d} {outcome.ram_bytes:8d} "
              f"{checks:>7s} {run.duty_cycle * 100:10.3f}% "
              f"{run.node.leds.state.red_toggles:12d}")

    print("\nThe safe, optimized build keeps the program's behaviour (same LED")
    print("activity), removes most of CCured's run-time checks, and costs about")
    print("as much CPU and memory as the original unsafe program.")


if __name__ == "__main__":
    main()
