#!/usr/bin/env python
"""Catching a real memory-safety bug with Safe TinyOS.

This example builds a deliberately buggy sensing application: the interrupt
handler stores ADC readings into a 4-entry buffer but the off-by-one loop
bound allows the index to reach 4, silently corrupting the adjacent counter
on the unsafe build.  The safe build traps the out-of-bounds store, reports
a FLID, and the host-side table decompresses it into a precise diagnostic —
the workflow of Figure 1's "error message decompression" step.

Custom applications have no registry name, so they go through the
``SafeTinyOS`` facade rather than a :class:`~repro.api.BuildSpec`; the
facade still routes every build through a shared
:class:`~repro.api.Workbench`, so the three variants below build from one
flattened front-end program.
"""

from repro import SafeTinyOS, Workbench
from repro.nesc.component import Component
from repro.tinyos.apps import _base
from repro.toolchain import BASELINE, variant_by_name

BUFFER_SIZE = 4


def buggy_component(ifaces) -> Component:
    """A sampling component with an off-by-one buffer bug."""
    source = f"""
uint16_t sample_buffer[{BUFFER_SIZE}];
uint8_t sample_index = 0;
uint16_t samples_taken = 0;

uint8_t Control_init(void) {{
  sample_index = 0;
  samples_taken = 0;
  return 1;
}}

uint8_t Control_start(void) {{
  Timer_start(250);
  return 1;
}}

uint8_t Control_stop(void) {{
  Timer_stop();
  return 1;
}}

uint8_t Timer_fired(void) {{
  PhotoADC_getData();
  return 1;
}}

uint8_t PhotoADC_dataReady(uint16_t value) {{
  atomic {{
    if (sample_index <= {BUFFER_SIZE}) {{
      sample_buffer[sample_index] = value;
      sample_index = sample_index + 1;
    }} else {{
      sample_index = 0;
    }}
    samples_taken = samples_taken + 1;
  }}
  Leds_redToggle();
  return 1;
}}
"""
    return Component(
        name="BuggySamplerM",
        provides={"Control": ifaces["StdControl"]},
        uses={"Timer": ifaces["Timer"], "Leds": ifaces["Leds"],
              "PhotoADC": ifaces["ADC"]},
        source=source,
    )


def build_application():
    ifaces = _base.interfaces()
    app = _base.new_application("BuggySampler", "mica2",
                                "Off-by-one sampling buffer demo")
    _base.add_leds(app, ifaces)
    _base.add_timer_stack(app, ifaces)
    _base.add_adc(app, ifaces)
    app.add_component(buggy_component(ifaces))
    app.wire("BuggySamplerM", "Timer", "TimerC", "Timer0")
    app.wire("BuggySamplerM", "Leds", "LedsC", "Leds")
    app.wire("BuggySamplerM", "PhotoADC", "ADCC", "PhotoADC")
    app.boot.append(("BuggySamplerM", "Control"))
    return app


def main() -> None:
    system = SafeTinyOS(workbench=Workbench())
    app = build_application()

    print("=== Unsafe build: the bug corrupts memory silently ===")
    unsafe = system.build(app, BASELINE)
    unsafe_run = system.simulate(unsafe, seconds=3.0, use_default_context=False)
    print(f"  duty cycle {unsafe_run.duty_cycle * 100:.3f}%, "
          f"halted={unsafe_run.halted}, failures={len(unsafe_run.failures)}")
    print("  (the out-of-bounds store lands in the adjacent variable and the")
    print("   application keeps running with corrupted state)\n")

    print("=== Safe build: the same bug is trapped at run time ===")
    safe = system.build(app, variant_by_name("safe-flid"))
    safe_run = system.simulate(safe, seconds=3.0, use_default_context=False)
    print(f"  duty cycle {safe_run.duty_cycle * 100:.3f}%, "
          f"halted={safe_run.halted}, failures={len(safe_run.failures)}")
    for failure in safe_run.failures:
        if failure.flid is not None:
            print(f"  mote reported FLID {failure.flid}")
            print(f"  decompressed: {safe.explain_failure(failure.flid)}")

    print("\n=== Optimized safe build: the check that catches the bug survives ===")
    optimized = system.build(app, variant_by_name("safe-optimized"))
    optimized_run = system.simulate(optimized, seconds=3.0,
                                    use_default_context=False)
    print(f"  checks surviving: {optimized.checks_surviving}/"
          f"{optimized.checks_inserted}")
    print(f"  halted={optimized_run.halted}, failures={len(optimized_run.failures)}")
    print("  cXprop removed the provably safe checks but kept this one — the")
    print("  analysis cannot prove the index in bounds, because it is not.")


if __name__ == "__main__":
    main()
