#!/usr/bin/env python
"""Catching a buffer overrun with Safe TinyOS — the scenario way.

Earlier revisions of this example hand-wrote a sampling component with an
off-by-one loop bound and built it three times to show the unsafe build
corrupting memory silently while the safe builds trap the store.  The
scenario subsystem (:mod:`repro.scenarios`) automates exactly that
comparison without needing a custom buggy application: a seeded
:class:`~repro.FaultPlan` injects the corruption into a *correct*
application — here a single-event-upset bit flip that advances Surge's
radio receive pointer past its message buffer — and the runner executes
the same simulation once per (variant, fault) pair, classifying each run
against a fault-free golden run.

The verdict matrix below is the paper's argument in one table: the
baseline build absorbs hundreds of out-of-bounds stores and keeps running
on corrupted state (``silent-corruption``), while every safe variant
reports a failure the moment the first corrupted store executes
(``detected``).
"""

from repro import FaultPlan, ScenarioSpec, Workbench
from repro.api.cli import format_scenario_record
from repro.scenarios import BitFlipFault, PayloadCorruptFault


def main() -> None:
    # One state-corrupting bit flip (pointer slots move the stored
    # pointer; the default flips bit 5, advancing it by 32 bytes) plus
    # in-flight payload corruption with the CRC patched so the link
    # layer cannot save us.
    plan = FaultPlan(faults=(BitFlipFault(), PayloadCorruptFault()))
    spec = ScenarioSpec(
        app="Surge_Mica2",
        variants=("baseline", "safe-flid", "safe-optimized"),
        plan=plan,
        seconds=2.0,
    )

    with Workbench() as bench:
        record = bench.run_scenario(spec)
    print(format_scenario_record(record))

    # The per-cell details show the mechanism behind each verdict.
    flip = plan.labels()[0]
    print(f"\nHow each build handled `{flip}`:")
    for variant in spec.variants:
        cell = record.details[f"{flip}|{variant}"]
        print(f"  {variant:>15}: {cell['verdict']:<17} "
              f"failures={cell['failures']} "
              f"absorbed_violations={cell['memory_violations']}")
    print("\nThe baseline mote keeps sampling with a corrupted receive")
    print("pointer — every incoming packet lands outside its buffer and")
    print("nothing notices.  The safe builds trap the first such store,")
    print("report a FLID, and halt: fail-stop instead of silent drift.")


if __name__ == "__main__":
    main()
