#!/usr/bin/env python
"""A small Surge collection network, built safely and simulated.

Surge is the paper's largest benchmark: periodic sensing delivered to a base
station over a beacon-based multihop routing layer.  This example builds the
safe, optimized image through the :class:`~repro.api.Workbench` (both builds
share one nesC front end), runs a three-mote network (one base station and
two sensing motes) and prints per-node statistics, plus the check-elimination
summary for the routing-heavy code.
"""

from repro.api import BuildSpec, Workbench
from repro.avrora.network import Network
from repro.avrora.node import Node

APP = "Surge_Mica2"
SIM_SECONDS = 8.0


def main() -> None:
    bench = Workbench()

    print("Building Surge (safe, FLIDs, inlined, cXprop-optimized)...")
    safe = bench.build(BuildSpec(app=APP, variant="safe-optimized"))
    baseline = bench.build(BuildSpec(app=APP, variant="baseline"))
    print(f"  unsafe baseline : {baseline.code_bytes} B code, "
          f"{baseline.ram_bytes} B RAM")
    print(f"  safe, optimized : {safe.code_bytes} B code, "
          f"{safe.ram_bytes} B RAM, "
          f"{safe.checks_surviving}/{safe.checks_inserted} checks survive\n")

    # Multi-node topologies need the live program, not just the record; the
    # Workbench memoized the full build, so this does not rebuild anything.
    program = bench.build_result(BuildSpec(app=APP,
                                           variant="safe-optimized")).program

    print(f"Simulating a 3-mote network for {SIM_SECONDS:.0f} virtual seconds...")
    network = Network()
    # Node ids: 0 is the base station (the routing root), 1 and 2 are sensors.
    for node_id in (0, 1, 2):
        node = Node(program, node_id=node_id)
        node.boot()
        network.add_node(node)
    network.run(SIM_SECONDS)

    print(f"\n{'node':>4s} {'role':<12s} {'duty cycle':>11s} {'tx pkts':>8s} "
          f"{'rx pkts':>8s} {'adc':>5s} {'halted':>7s}")
    for node in network.nodes:
        role = "base" if node.node_id == 0 else "sensor"
        print(f"{node.node_id:>4d} {role:<12s} {node.duty_cycle() * 100:10.3f}% "
              f"{len(node.radio.packets_sent):8d} "
              f"{node.radio.packets_received:8d} "
              f"{node.adc.conversions:5d} {str(node.halted):>7s}")

    print(f"\npackets delivered across the air: {network.delivered_packets}")
    print("No safety failures were reported: the surviving checks all passed,")
    print("and the multihop forwarding path ran entirely under the safe regime.")


if __name__ == "__main__":
    main()
