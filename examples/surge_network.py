#!/usr/bin/env python
"""A real multi-hop Surge collection network, built safely and simulated.

Surge is the paper's largest benchmark: periodic sensing delivered to a base
station over a beacon-based multihop routing layer.  This example builds the
safe, optimized image through the :class:`~repro.api.Workbench`, then wires
four motes in a ``chain`` topology on the lockstep network kernel::

    base (0)  <-->  relay (1)  <-->  relay (2)  <-->  leaf (3)

Because nodes now advance in lockstep over a latency-modelled channel, the
leaf's readings genuinely hop: the leaf can only reach its chain neighbour,
the relays forward toward their routing parent, and the base receives
packets whose multihop header names a *different* origin than the last-hop
sender — the forwarding path the sequential simulator could not reproduce.
"""

from repro.api import BuildSpec, Workbench
from repro.avrora.network import Channel, Network
from repro.avrora.node import Node
from repro.tinyos import messages as msgs

APP = "Surge_Mica2"
NODES = 4
SIM_SECONDS = 40.0


def main() -> None:
    with Workbench() as bench:
        print("Building Surge (safe, FLIDs, inlined, cXprop-optimized)...")
        safe = bench.build(BuildSpec(app=APP, variant="safe-optimized"))
        baseline = bench.build(BuildSpec(app=APP, variant="baseline"))
        print(f"  unsafe baseline : {baseline.code_bytes} B code, "
              f"{baseline.ram_bytes} B RAM")
        print(f"  safe, optimized : {safe.code_bytes} B code, "
              f"{safe.ram_bytes} B RAM, "
              f"{safe.checks_surviving}/{safe.checks_inserted} checks "
              f"survive\n")

        # Multi-node topologies need the live program, not just the record;
        # the Workbench memoized the full build, so this does not rebuild
        # anything.  The program outlives the session.
        program = bench.build_result(
            BuildSpec(app=APP, variant="safe-optimized")).program

    print(f"Simulating a {NODES}-mote chain for {SIM_SECONDS:.0f} virtual "
          f"seconds (lockstep, per-link latency)...")
    network = Network(channel=Channel(topology="chain"))
    # Chain order == node id: 0 is the base station (the routing root).
    for node_id in range(NODES):
        node = Node(program, node_id=node_id)
        node.boot()
        network.add_node(node)
    network.run(SIM_SECONDS)

    print(f"\n{'node':>4s} {'role':<8s} {'duty cycle':>11s} {'tx pkts':>8s} "
          f"{'rx pkts':>8s} {'adc':>5s} {'halted':>7s}")
    for node in network.nodes:
        role = ("base" if node.node_id == 0
                else "leaf" if node.node_id == NODES - 1 else "relay")
        print(f"{node.node_id:>4d} {role:<8s} {node.duty_cycle() * 100:10.3f}% "
              f"{len(node.radio.packets_sent):8d} "
              f"{node.radio.packets_received:8d} "
              f"{node.adc.conversions:5d} {str(node.halted):>7s}")

    print(f"\npackets delivered across the air: {network.delivered_packets}")

    # Decode the multihop headers of data packets the base accepted: a
    # packet whose origin is not its last-hop sender was forwarded.
    forwarded = []
    for record in network.deliveries:
        if record.receiver_id != 0 or not record.accepted:
            continue
        am_type, source, origin = msgs.decode_multihop_header(record.payload)
        if am_type == msgs.AM_MULTIHOP and origin != source:
            forwarded.append((origin, source, record.received_cycles))
    print(f"forwarded readings at the base (origin != last hop): "
          f"{len(forwarded)}")
    for origin, source, cycles in forwarded[:5]:
        print(f"  origin mote {origin} via mote {source} "
              f"at t={cycles / network.nodes[0].clock_hz:.3f}s")
    print("\nNo safety failures were reported: the surviving checks all "
          "passed,\nand the multihop forwarding path ran entirely under "
          "the safe regime.")


if __name__ == "__main__":
    main()
