#!/usr/bin/env python
"""A tour of the Safe TinyOS toolchain, stage by stage.

Where the other examples use the declarative ``repro.api`` layer, this one
drives each pipeline stage of the paper's Figure 1 by hand on the
Oscilloscope application and reports what every stage did: the nesC
flattening and its race list, the hardware-register refactoring, CCured's
pointer kinds and inserted checks, the lock insertion, the inliner,
cXprop's folding/DCE, the backend's easy-check removal, and the final
image.  At the end, the same configuration is rebuilt through a
:class:`~repro.api.Workbench` in one call, and the hand-driven image must
match the API's :class:`~repro.api.BuildRecord` byte for byte — the stages
above are exactly what a spec lowers to.
"""

from repro.backend import build_image, gcc_optimize
from repro.ccured import CCuredConfig, MessageStrategy, cure
from repro.ccured.optimizer import optimize_checks
from repro.cminor.pretty import to_source
from repro.cxprop import inline_program, optimize_program
from repro.cxprop.driver import CxpropConfig
from repro.nesc.hwrefactor import refactor_hardware_accesses
from repro.tinyos import suite


def main() -> None:
    name = "Oscilloscope_Mica2"
    print(f"=== Stage 1: nesC compiler (flatten {name}) ===")
    program = suite.build_program(name, suppress_norace=True)
    stats = program.summary()
    print(f"  {stats['functions']} functions, {stats['globals']} globals, "
          f"{stats['statements']} statements")
    print(f"  tasks: {program.tasks}")
    print(f"  interrupt vectors: {sorted(program.interrupt_vectors)}")
    print(f"  racy variables reported by the nesC analysis: "
          f"{len(program.racy_variables)}")

    print("\n=== Stage 2: refactor hardware register accesses ===")
    hw_report = refactor_hardware_accesses(program)
    print(f"  rewrote {hw_report.reads_rewritten} register reads and "
          f"{hw_report.writes_rewritten} register writes into helper calls")

    print("\n=== Stage 3: CCured ===")
    result = cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                                        run_optimizer=False))
    report = result.report()
    print(f"  pointer kinds: {report['safe_pointers']} SAFE, "
          f"{report['seq_pointers']} SEQ, {report['wild_pointers']} WILD")
    print(f"  checks inserted: {report['checks_inserted']} "
          f"({report['null_checks']} null, {report['bounds_checks']} bounds, "
          f"{report['index_checks']} index)")
    print(f"  checks wrapped in atomic sections (racy variables): "
          f"{report['locked_checks']}")
    print(f"  FLID table entries: {len(result.flid_table)}")

    print("\n=== Stage 4: CCured's own check optimizer ===")
    removed = optimize_checks(program)
    print(f"  removed {removed} statically redundant checks")

    print("\n=== Stage 5: source-to-source inliner ===")
    inline_report = inline_program(program)
    print(f"  inlined {inline_report.calls_inlined} calls "
          f"({inline_report.calls_hoisted} nested calls hoisted first), "
          f"dropped {inline_report.functions_removed} fully inlined functions")

    print("\n=== Stage 6: cXprop ===")
    cxprop_report = optimize_program(program, CxpropConfig(domain="interval"))
    summary = cxprop_report.summary()
    for key in ("branches_folded", "constants_substituted", "copies_propagated",
                "dead_stores_removed", "globals_removed", "functions_removed",
                "nested_atomic_removed", "irq_saves_avoided"):
        print(f"  {key.replace('_', ' ')}: {summary[key]}")

    print("\n=== Stage 7: GCC-strength backend ===")
    gcc_report = gcc_optimize(program)
    print(f"  constants folded: {gcc_report.constants_folded}, easy checks "
          f"removed: {gcc_report.checks_removed}, functions dropped: "
          f"{gcc_report.functions_removed}")

    image = build_image(program)
    print("\n=== Final image ===")
    print(f"  code: {image.code_bytes} B, RAM: {image.ram_bytes} B "
          f"(data {image.data_bytes} + bss {image.bss_bytes} + "
          f"strings {image.string_ram_bytes})")
    survivors = image.surviving_checks
    print(f"  checks surviving in the image: {len(survivors)} of "
          f"{result.checks_inserted}")
    for flid in sorted(survivors)[:5]:
        print(f"    {flid}: {result.flid_table.lookup(flid).format_message(name)}")

    print("\n=== A look at the optimized source (one function) ===")
    func = program.lookup_function("OscilloscopeM__PhotoADC_dataReady")
    if func is None:
        func = next(iter(program.iter_functions()))
    print(to_source(func))

    print("\n=== The same build, declaratively ===")
    # The hand-driven stages above are the pass list of the registered
    # "fig2-ccured-inline-cxprop-gcc" variant; one Workbench call replays it.
    from repro.api import BuildSpec, Workbench

    with Workbench() as bench:
        record = bench.build(
            BuildSpec(app=name, variant="fig2-ccured-inline-cxprop-gcc"))
    print(f"  Workbench record: {record.code_bytes} B code, "
          f"{record.ram_bytes} B RAM, "
          f"{record.checks_surviving}/{record.checks_inserted} checks "
          f"(content key {record.content_key})")
    assert record.code_bytes == image.code_bytes
    assert record.ram_bytes == image.ram_bytes
    assert record.checks_surviving == len(survivors)
    print("  identical to the hand-driven build — the API lowers to these "
          "exact stages")


if __name__ == "__main__":
    main()
