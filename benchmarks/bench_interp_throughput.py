"""Interpreter statement-throughput microbenchmark.

Measures statements/second for the reference tree-walking interpreter
("before") and the compile-to-closures engine (:mod:`repro.avrora.engine`)
— with superblock fusion (the default), with fusion on but trace-level
call inlining disabled (``REPRO_AVRORA_TRACES=0``, the trace-ablation
column), and with fusion disabled entirely
(``REPRO_AVRORA_SUPERBLOCKS=0``) — on three workload shapes:

* ``tight_loop`` — a counting loop over a global accumulator,
* ``function_calls`` — a call-heavy loop exercising frames and returns,
* ``interrupt_heavy`` — a compute loop preempted by two hardware timers.

Every run asserts that all three configurations execute the *same*
statement stream, charge the *same* cycle totals, and — via an
order-sensitive mixing global updated by two competing interrupt handlers
— deliver interrupts in the *same* order: the speedup must come for free.
Results (including the engine's superblock hit-rate statistics) are
recorded in ``BENCH_interp.json`` at the repository root (CI uploads it as
an artifact); run this module directly for a standalone measurement, or
via pytest as part of the benchmark suite.

The run also proves the persistent plan store's headline: plans exported
by one in-memory "process" (a fresh ``Program``), persisted through
:class:`~repro.avrora.codestore.PlanStore` and hydrated into another,
warm the second engine to **zero** front-end lowerings
(``warm_vs_cold`` in the recorded JSON).

Set ``REPRO_BENCH_SMOKE=1`` to shrink the simulated window (CI smoke
mode), ``REPRO_BENCH_MIN_SPEEDUP`` to tune the asserted fusion-off floor,
``REPRO_BENCH_MIN_SPEEDUP_FUSED`` to tune the asserted best-workload
floor with fusion on, and ``REPRO_BENCH_MIN_SPEEDUP_CALLS`` to tune the
per-workload floor on ``function_calls`` with traces on (the defaults are
conservative so a loaded CI machine does not flake; an idle machine shows
~5x unfused, well above 8x fused on the loop workloads, and ~8x on
``function_calls`` once traces inline the callee).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.avrora.memory import Pointer
from repro.avrora.node import Node
from repro.cminor import typesys as ty
from repro.cminor.parser import parse_program
from repro.cminor.program import Program, link_units
from repro.cminor.simplify import simplify_program
from repro.cminor.typecheck import check_program
from repro.tinyos import hardware as hw

#: Simulated seconds per engine per workload (CPU-bound, so this bounds the
#: number of executed statements, not wall-clock time).
SIM_SECONDS = 2.0
SMOKE_SECONDS = 0.25

#: Asserted speedup floor with fusion *disabled* (the pre-superblock
#: engine).  Kept below the observed ~5x so a noisy CI machine does not
#: flake; the recorded JSON carries the real number.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

#: Asserted floor on the *best* workload's speedup with fusion enabled.
MIN_SPEEDUP_FUSED = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_FUSED", "6.0"))

#: Asserted per-workload floor on ``function_calls`` with traces enabled
#: (the call-boundary workload traces were built for; the recorded JSON
#: from an idle machine clears 7x).
MIN_SPEEDUP_CALLS = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_CALLS", "4.0"))

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

TIGHT_LOOP = """
uint32_t total = 0;
__spontaneous void main(void) {
  uint16_t i;
  while (1) {
    for (i = 0; i < 1000; i++) {
      total = total + i;
    }
  }
}
"""

FUNCTION_CALLS = """
uint32_t acc = 0;
uint16_t mix(uint16_t a, uint16_t b) {
  uint16_t r = a * 3 + b;
  if (r > 900) { r = r - 900; }
  return r;
}
__spontaneous void main(void) {
  uint16_t i;
  while (1) {
    acc = acc + mix(i, (uint16_t)(acc & 255));
    i = i + 1;
  }
}
"""

# Two competing timers whose handlers fold their identity into one
# order-sensitive mixing global: ``order`` only matches across engines if
# every interrupt was delivered in exactly the same FIFO order (the
# micro-assert guarding ``Node.pending_interrupts``'s deque semantics).
INTERRUPT_HEAVY = """
uint16_t ticks = 0;
uint16_t micks = 0;
uint32_t order = 1;
uint32_t work = 0;
__interrupt("TIMER1_COMPA") void fired(void) {
  ticks = ticks + 1;
  order = (order * 33 + 1) %% 65521;
}
__interrupt("TIMER3_COMPA") void micro_fired(void) {
  micks = micks + 1;
  order = (order * 33 + 2) %% 65521;
}
__spontaneous void main(void) {
  uint16_t i;
  __hw_write16(%d, 2);
  __hw_write8(%d, 1);
  __hw_write16(%d, 3);
  __hw_write8(%d, 1);
  __enable_interrupts();
  while (1) {
    for (i = 0; i < 50; i++) {
      work = work + i;
    }
  }
}
""" % (hw.TIMER_RATE, hw.TIMER_CTRL, hw.MICROTIMER_RATE, hw.MICROTIMER_CTRL)

WORKLOADS: dict[str, tuple[str, dict[str, str]]] = {
    "tight_loop": (TIGHT_LOOP, {}),
    "function_calls": (FUNCTION_CALLS, {}),
    "interrupt_heavy": (INTERRUPT_HEAVY, {"TIMER1_COMPA": "fired",
                                          "TIMER3_COMPA": "micro_fired"}),
}


def _build(source: str, vectors: dict[str, str]) -> Program:
    unit = parse_program(source, "bench")
    program = link_units([unit], name="bench")
    check_program(program)
    simplify_program(program)
    check_program(program)
    program.interrupt_vectors.update(vectors)
    return program


def _make_node(program: Program, engine: str, superblocks: bool,
               traces: bool = True) -> Node:
    """A node with the fusion and trace switches pinned (not inherited
    from the caller's environment), restored after engine construction
    reads them."""
    previous = {name: os.environ.get(name)
                for name in ("REPRO_AVRORA_SUPERBLOCKS",
                             "REPRO_AVRORA_TRACES")}
    os.environ["REPRO_AVRORA_SUPERBLOCKS"] = "1" if superblocks else "0"
    os.environ["REPRO_AVRORA_TRACES"] = "1" if traces else "0"
    try:
        return Node(program, engine=engine)
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _run(source: str, vectors: dict[str, str], engine: str, seconds: float,
         superblocks: bool = True, traces: bool = True) -> tuple[Node, float]:
    program = _build(source, vectors)
    node = _make_node(program, engine, superblocks, traces)
    node.boot()
    start = time.perf_counter()
    node.run(seconds)
    elapsed = time.perf_counter() - start
    return node, elapsed


def _read_global(node: Node, name: str, ctype=ty.UINT32) -> int:
    obj = node.memory.global_object(name)
    assert obj is not None, f"global {name} missing"
    return node.memory.read(Pointer(obj, 0), ctype)


def _sim_seconds() -> float:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return SMOKE_SECONDS
    return SIM_SECONDS


def measure() -> dict:
    """Run every workload under all three configurations (tree-walker,
    compiled with superblocks, compiled without) and return the table."""
    seconds = _sim_seconds()
    results: dict = {
        "sim_seconds": seconds,
        "min_speedup_asserted": MIN_SPEEDUP,
        "min_speedup_fused_asserted": MIN_SPEEDUP_FUSED,
        "min_speedup_calls_asserted": MIN_SPEEDUP_CALLS,
        "workloads": {},
    }
    for name, (source, vectors) in WORKLOADS.items():
        tree_node, tree_time = _run(source, vectors, "tree", seconds)
        compiled_node, compiled_time = _run(source, vectors, "compiled",
                                            seconds)
        notrace_node, notrace_time = _run(source, vectors, "compiled",
                                          seconds, traces=False)
        nosb_node, nosb_time = _run(source, vectors, "compiled", seconds,
                                    superblocks=False)

        # Every compiled configuration must match the tree-walker exactly:
        # same statements, same cycles, same interrupt count.
        for label, node in (("compiled", compiled_node),
                            ("compiled/notrace", notrace_node),
                            ("compiled/nosb", nosb_node)):
            assert tree_node.busy_cycles == node.busy_cycles, \
                f"{name} ({label}): cycle totals diverge"
            assert tree_node.time_cycles == node.time_cycles, \
                f"{name} ({label}): simulated time diverges"
            assert tree_node.interpreter.statements_executed == \
                node.interpreter.statements_executed, \
                f"{name} ({label}): statement streams diverge"
            assert tree_node.interrupts_delivered == \
                node.interrupts_delivered, \
                f"{name} ({label}): interrupt delivery diverges"
            if name == "interrupt_heavy":
                # Micro-assert: the two timers' handlers mixed their
                # identities into ``order`` in exactly the same sequence —
                # FIFO delivery through the pending-interrupt deque is
                # order-identical across engines and fusion modes.
                assert _read_global(tree_node, "order") == \
                    _read_global(node, "order"), \
                    f"{name} ({label}): interrupt delivery order diverges"

        statements = tree_node.interpreter.statements_executed
        superblocks = compiled_node.interpreter.superblock_stats()
        results["workloads"][name] = {
            "statements": statements,
            "busy_cycles": tree_node.busy_cycles,
            "interrupts_delivered": tree_node.interrupts_delivered,
            "tree_seconds": round(tree_time, 4),
            "compiled_seconds": round(compiled_time, 4),
            "compiled_notrace_seconds": round(notrace_time, 4),
            "compiled_nosb_seconds": round(nosb_time, 4),
            "tree_stmts_per_sec": round(statements / tree_time),
            "compiled_stmts_per_sec": round(statements / compiled_time),
            "compiled_notrace_stmts_per_sec": round(
                statements / notrace_time),
            "compiled_nosb_stmts_per_sec": round(statements / nosb_time),
            "speedup": round(tree_time / compiled_time, 2),
            "speedup_notrace": round(tree_time / notrace_time, 2),
            "speedup_nosb": round(tree_time / nosb_time, 2),
            "superblocks": {
                "superblocks": superblocks["superblocks"],
                "loop_superblocks": superblocks["loop_superblocks"],
                "traces": superblocks["traces"],
                "inlined_call_sites": superblocks["inlined_call_sites"],
                "inlined_calls": superblocks["inlined_calls"],
                "entries_fast": superblocks["entries_fast"],
                "entries_slow": superblocks["entries_slow"],
                "bursts": superblocks["bursts"],
                "burst_iterations": superblocks["burst_iterations"],
                "fused_statements": superblocks["fused_statements"],
                "fused_fraction": superblocks["fused_fraction"],
            },
        }
    speedups = [w["speedup"] for w in results["workloads"].values()]
    speedups_nosb = [w["speedup_nosb"]
                     for w in results["workloads"].values()]
    results["min_speedup"] = min(speedups)
    results["max_speedup"] = max(speedups)
    results["min_speedup_nosb"] = min(speedups_nosb)
    results["max_speedup_nosb"] = max(speedups_nosb)
    results["warm_vs_cold"] = measure_warm_vs_cold()
    return results


def measure_warm_vs_cold() -> dict:
    """Prove the persistent plan store's zero-lowering warm start.

    Two independently parsed programs stand in for two processes (their
    ASTs share nothing, exactly like a fresh ``python -m repro`` run): the
    cold one lowers every function and persists the plans through a
    :class:`PlanStore`; the warm one hydrates them back and compiles its
    engine without a single front-end lowering.  Both then run the same
    simulated window and must land on identical cycle counts.
    """
    import tempfile

    from repro.avrora.codestore import PlanStore, plan_key

    source, vectors = WORKLOADS["function_calls"]
    seconds = min(_sim_seconds(), 0.25)
    with tempfile.TemporaryDirectory(prefix="plan-store-") as root:
        store = PlanStore(root)
        key = plan_key("bench-function-calls", "mica2")

        cold_program = _build(source, vectors)
        cold_node = _make_node(cold_program, "compiled", True)
        cold_node.boot()
        cold_node.interpreter.warm()
        cache = cold_program.analysis().code_cache()
        cache.lower_all(cold_program, cache.costs)
        cold_lowerings = cache.lowerings
        store.store(key, cache.export_portable(cold_program))
        cold_node.run(seconds)

        warm_program = _build(source, vectors)
        warm_cache = warm_program.analysis().code_cache()
        warm_cache.hydrate_portable(warm_program, store.load(key))
        warm_node = _make_node(warm_program, "compiled", True)
        warm_node.boot()
        warm_node.interpreter.warm()
        warm_node.run(seconds)

        assert warm_cache.lowerings == 0, \
            f"warm start performed {warm_cache.lowerings} lowerings"
        assert warm_node.time_cycles == cold_node.time_cycles, \
            "warm start diverged from cold start"
        return {
            "workload": "function_calls",
            "cold_lowerings": cold_lowerings,
            "warm_lowerings": warm_cache.lowerings,
            "warm_disk_loads": warm_cache.disk_loads,
            "store": store.stats(),
        }


def _record(results: dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def test_interp_throughput() -> None:
    """The compiled engine is cycle-identical and substantially faster,
    with and without superblock fusion."""
    results = measure()
    _record(results)
    print()
    print(format_table(results))
    assert results["min_speedup_nosb"] >= MIN_SPEEDUP, \
        f"fusion-off engine speedup {results['min_speedup_nosb']}x fell " \
        f"below the {MIN_SPEEDUP}x floor: {results['workloads']}"
    assert results["min_speedup"] >= MIN_SPEEDUP, \
        f"compiled engine speedup {results['min_speedup']}x fell below " \
        f"the {MIN_SPEEDUP}x floor: {results['workloads']}"
    assert results["max_speedup"] >= MIN_SPEEDUP_FUSED, \
        f"best fused speedup {results['max_speedup']}x fell below the " \
        f"{MIN_SPEEDUP_FUSED}x floor: {results['workloads']}"
    calls = results["workloads"]["function_calls"]
    assert calls["speedup"] >= MIN_SPEEDUP_CALLS, \
        f"function_calls speedup {calls['speedup']}x fell below the " \
        f"per-workload {MIN_SPEEDUP_CALLS}x floor (traces formed: " \
        f"{calls['superblocks']['traces']}): {calls}"
    assert results["warm_vs_cold"]["warm_lowerings"] == 0


def format_table(results: dict) -> str:
    lines = [
        f"interpreter throughput ({results['sim_seconds']}s simulated):",
        f"{'workload':<18} {'tree st/s':>12} {'no-fuse st/s':>13} "
        f"{'no-trace st/s':>14} {'fused st/s':>12} {'speedup':>8} "
        f"{'fused %':>8}",
    ]
    for name, row in results["workloads"].items():
        fused_pct = row["superblocks"]["fused_fraction"] * 100
        lines.append(
            f"{name:<18} {row['tree_stmts_per_sec']:>12,} "
            f"{row['compiled_nosb_stmts_per_sec']:>13,} "
            f"{row['compiled_notrace_stmts_per_sec']:>14,} "
            f"{row['compiled_stmts_per_sec']:>12,} {row['speedup']:>7}x "
            f"{fused_pct:>7.1f}%")
    warm = results.get("warm_vs_cold")
    if warm:
        lines.append(
            f"plan store: cold lowered {warm['cold_lowerings']} "
            f"function(s); warm start lowered {warm['warm_lowerings']} "
            f"({warm['warm_disk_loads']} hydrated from disk)")
    return "\n".join(lines)


def main() -> None:
    results = measure()
    _record(results)
    print(format_table(results))
    print(f"results written to {RESULT_PATH}")


if __name__ == "__main__":
    main()
