"""Interpreter statement-throughput microbenchmark.

Measures statements/second for the reference tree-walking interpreter
("before") and the compile-to-closures engine ("after",
:mod:`repro.avrora.engine`) on three workload shapes:

* ``tight_loop`` — a counting loop over a global accumulator,
* ``function_calls`` — a call-heavy loop exercising frames and returns,
* ``interrupt_heavy`` — a compute loop preempted by the 1024 Hz clock.

Every run asserts that the two engines execute the *same* statement stream
and charge the *same* cycle totals — the speedup must come for free.
Results are recorded in ``BENCH_interp.json`` at the repository root (CI
uploads it as an artifact); run this module directly for a standalone
measurement, or via pytest as part of the benchmark suite.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the simulated window (CI smoke mode)
and ``REPRO_BENCH_MIN_SPEEDUP`` to tune the asserted floor (the default is
conservative so a loaded CI machine does not flake; an idle machine shows
well above 5x).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.avrora.node import Node
from repro.cminor.parser import parse_program
from repro.cminor.program import Program, link_units
from repro.cminor.simplify import simplify_program
from repro.cminor.typecheck import check_program
from repro.tinyos import hardware as hw

#: Simulated seconds per engine per workload (CPU-bound, so this bounds the
#: number of executed statements, not wall-clock time).
SIM_SECONDS = 2.0
SMOKE_SECONDS = 0.25

#: Asserted speedup floor.  Kept below the observed ~5.5x so a noisy CI
#: machine does not flake; the recorded JSON carries the real number.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

TIGHT_LOOP = """
uint32_t total = 0;
__spontaneous void main(void) {
  uint16_t i;
  while (1) {
    for (i = 0; i < 1000; i++) {
      total = total + i;
    }
  }
}
"""

FUNCTION_CALLS = """
uint32_t acc = 0;
uint16_t mix(uint16_t a, uint16_t b) {
  uint16_t r = a * 3 + b;
  if (r > 900) { r = r - 900; }
  return r;
}
__spontaneous void main(void) {
  uint16_t i;
  while (1) {
    acc = acc + mix(i, (uint16_t)(acc & 255));
    i = i + 1;
  }
}
"""

INTERRUPT_HEAVY = """
uint16_t ticks = 0;
uint32_t work = 0;
__interrupt("TIMER1_COMPA") void fired(void) {
  ticks = ticks + 1;
}
__spontaneous void main(void) {
  uint16_t i;
  __hw_write16(%d, 2);
  __hw_write8(%d, 1);
  __enable_interrupts();
  while (1) {
    for (i = 0; i < 50; i++) {
      work = work + i;
    }
  }
}
""" % (hw.TIMER_RATE, hw.TIMER_CTRL)

WORKLOADS: dict[str, tuple[str, dict[str, str]]] = {
    "tight_loop": (TIGHT_LOOP, {}),
    "function_calls": (FUNCTION_CALLS, {}),
    "interrupt_heavy": (INTERRUPT_HEAVY, {"TIMER1_COMPA": "fired"}),
}


def _build(source: str, vectors: dict[str, str]) -> Program:
    unit = parse_program(source, "bench")
    program = link_units([unit], name="bench")
    check_program(program)
    simplify_program(program)
    check_program(program)
    program.interrupt_vectors.update(vectors)
    return program


def _run(source: str, vectors: dict[str, str], engine: str,
         seconds: float) -> tuple[Node, float]:
    program = _build(source, vectors)
    node = Node(program, engine=engine)
    node.boot()
    start = time.perf_counter()
    node.run(seconds)
    elapsed = time.perf_counter() - start
    return node, elapsed


def _sim_seconds() -> float:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return SMOKE_SECONDS
    return SIM_SECONDS


def measure() -> dict:
    """Run every workload under both engines and return the result table."""
    seconds = _sim_seconds()
    results: dict = {
        "sim_seconds": seconds,
        "min_speedup_asserted": MIN_SPEEDUP,
        "workloads": {},
    }
    for name, (source, vectors) in WORKLOADS.items():
        tree_node, tree_time = _run(source, vectors, "tree", seconds)
        compiled_node, compiled_time = _run(source, vectors, "compiled",
                                            seconds)

        # The compiled engine must match the tree-walker exactly: same
        # statements, same cycles, same interrupt count.
        assert tree_node.busy_cycles == compiled_node.busy_cycles, \
            f"{name}: cycle totals diverge"
        assert tree_node.time_cycles == compiled_node.time_cycles, \
            f"{name}: simulated time diverges"
        assert tree_node.interpreter.statements_executed == \
            compiled_node.interpreter.statements_executed, \
            f"{name}: statement streams diverge"
        assert tree_node.interrupts_delivered == \
            compiled_node.interrupts_delivered, \
            f"{name}: interrupt delivery diverges"

        statements = tree_node.interpreter.statements_executed
        tree_rate = statements / tree_time
        compiled_rate = statements / compiled_time
        results["workloads"][name] = {
            "statements": statements,
            "busy_cycles": tree_node.busy_cycles,
            "interrupts_delivered": tree_node.interrupts_delivered,
            "tree_seconds": round(tree_time, 4),
            "compiled_seconds": round(compiled_time, 4),
            "tree_stmts_per_sec": round(tree_rate),
            "compiled_stmts_per_sec": round(compiled_rate),
            "speedup": round(tree_time / compiled_time, 2),
        }
    speedups = [w["speedup"] for w in results["workloads"].values()]
    results["min_speedup"] = min(speedups)
    results["max_speedup"] = max(speedups)
    return results


def _record(results: dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def test_interp_throughput() -> None:
    """The compiled engine is cycle-identical and substantially faster."""
    results = measure()
    _record(results)
    print()
    print(format_table(results))
    assert results["min_speedup"] >= MIN_SPEEDUP, \
        f"compiled engine speedup {results['min_speedup']}x fell below " \
        f"the {MIN_SPEEDUP}x floor: {results['workloads']}"


def format_table(results: dict) -> str:
    lines = [
        f"interpreter throughput ({results['sim_seconds']}s simulated):",
        f"{'workload':<18} {'tree st/s':>12} {'compiled st/s':>14} "
        f"{'speedup':>8}",
    ]
    for name, row in results["workloads"].items():
        lines.append(
            f"{name:<18} {row['tree_stmts_per_sec']:>12,} "
            f"{row['compiled_stmts_per_sec']:>14,} {row['speedup']:>7}x")
    return "\n".join(lines)


def main() -> None:
    results = measure()
    _record(results)
    print(format_table(results))
    print(f"results written to {RESULT_PATH}")


if __name__ == "__main__":
    main()
