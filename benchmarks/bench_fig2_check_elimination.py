"""Figure 2: percentage of CCured's checks eliminated by four optimizer mixes.

For every benchmark application and each of the four strategies —

1. gcc alone,
2. the CCured optimizer, then gcc,
3. the CCured optimizer, then cXprop, then gcc,
4. the CCured optimizer, then the inliner, then cXprop, then gcc —

the harness counts the checks whose unique identifiers survive into the
final image (the paper's methodology) and prints the per-application removal
percentages together with the number of checks CCured originally inserted
(the numbers across the top of the figure).

Expected shape (checked by assertions): strategy 4 removes the most checks
on every application and is the only strategy that removes most of them
overall; gcc alone is never the best strategy.
"""

from __future__ import annotations

import pytest

from repro.api.figures import FIGURE2_LABELS, figure2_table


def test_figure2_check_elimination(benchmark, workbench, selected_apps):
    table = benchmark.pedantic(
        figure2_table, args=(workbench, selected_apps), rounds=1, iterations=1)

    print()
    print(table.format(value_format="{:5.1f}%"))

    best_label = FIGURE2_LABELS[3]
    best = table.series[-1].values
    gcc_only = table.series[0].values

    # The full pipeline is at least as good as every other strategy on every
    # application, and strictly better than gcc alone somewhere.
    for series in table.series[:-1]:
        for app in table.applications:
            assert best[app] >= series.values[app] - 1e-9, (
                f"{best_label} should dominate {series.label} on {app}")
    assert any(best[app] > gcc_only[app] for app in table.applications), \
        "inlining + cXprop should beat gcc alone on at least one application"

    # The full pipeline removes most checks overall (the paper's headline).
    average_best = sum(best.values()) / len(best)
    assert average_best >= 50.0, (
        f"expected the full pipeline to remove most checks on average, "
        f"got {average_best:.1f}%")

    # Every application has a meaningful number of checks to start with.
    for app in table.applications:
        assert table.baselines[app] >= 5, \
            f"{app}: CCured inserted suspiciously few checks"
