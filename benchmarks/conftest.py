"""Shared fixtures for the evaluation benchmarks.

Building an application is deterministic, so one
:class:`repro.api.Workbench` serves the whole benchmark session: builds are
memoized by spec content key, and different variants of one application
resume from the session's shared front-end (and CCured) snapshots instead
of re-running the nesC compiler.  This mirrors how the paper's evaluation
reuses one build per configuration across measurements — and it is the same
engine the ``python -m repro`` CLI and the ``SafeTinyOS`` facade use.
"""

from __future__ import annotations

import pytest

from repro.api.workbench import Workbench


@pytest.fixture(scope="session")
def workbench():
    with Workbench() as bench:
        yield bench


def pytest_addoption(parser):
    parser.addoption(
        "--apps", action="store", default="",
        help="Comma-separated subset of figure applications to benchmark")


@pytest.fixture(scope="session")
def selected_apps(request) -> list[str]:
    from repro.tinyos.suite import FIGURE_APPS

    raw = request.config.getoption("--apps")
    if not raw:
        return list(FIGURE_APPS)
    wanted = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in FIGURE_APPS]
    if unknown:
        raise pytest.UsageError(f"unknown applications: {unknown}")
    return wanted
