"""Shared fixtures for the evaluation benchmarks.

Building an application is deterministic, so builds are cached per
(application, variant) for the whole benchmark session; the per-figure
benchmarks then assemble their tables from the cache.  This mirrors how the
paper's evaluation reuses one build per configuration across measurements.
"""

from __future__ import annotations

import pytest

from repro.toolchain.config import BuildVariant
from repro.toolchain.pipeline import BuildPipeline, BuildResult


class BuildCache:
    """Memoized application builds keyed by (application, variant name)."""

    def __init__(self) -> None:
        self._results: dict[tuple[str, str], BuildResult] = {}

    def build(self, app_name: str, variant: BuildVariant) -> BuildResult:
        key = (app_name, variant.name)
        if key not in self._results:
            self._results[key] = BuildPipeline(variant).build_named(app_name)
        return self._results[key]

    def __len__(self) -> int:
        return len(self._results)


@pytest.fixture(scope="session")
def build_cache() -> BuildCache:
    return BuildCache()


def pytest_addoption(parser):
    parser.addoption(
        "--apps", action="store", default="",
        help="Comma-separated subset of figure applications to benchmark")


@pytest.fixture(scope="session")
def selected_apps(request) -> list[str]:
    from repro.tinyos.suite import FIGURE_APPS

    raw = request.config.getoption("--apps")
    if not raw:
        return list(FIGURE_APPS)
    wanted = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in FIGURE_APPS]
    if unknown:
        raise pytest.UsageError(f"unknown applications: {unknown}")
    return wanted
