"""Network-scale benchmark for the lockstep discrete-event kernel.

Measures wall time and aggregate statement throughput of multi-node Surge
networks in a ``chain`` topology as the node count grows, plus the lockstep
kernel's overhead over the legacy sequential runner on a single node
(where the two are byte-identical by construction, so the comparison is
pure kernel overhead: one execution thread and one horizon grant).

Also measures the shared code cache (:class:`repro.avrora.engine.\
CodeCache`): the first node of a program pays the full lowering front end
(frame layout, cost and fusability analysis), every further node binds
closures against the cached plans — the benchmark times both, records the
amortization ratio, and asserts via the cache's ``lowerings`` counter that
the front end really ran once per function across every node of every
network size.

Results are recorded in ``BENCH_network.json`` at the repository root (CI
uploads it as an artifact); run this module directly for a standalone
measurement, or via pytest as part of the benchmark suite.

Also measures the sharded multi-process kernel (``repro.avrora.shard``)
over a grid-topology matrix of node counts × worker counts: aggregate and
per-node statement throughput, window-grant rounds and synchronization
wait per shard.  Statement counts are asserted bit-equal across worker
counts (the kernel's core guarantee), and the largest configuration must
beat the in-process kernel by the configurable speedup floor.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the simulated window and node counts
(CI smoke mode), ``REPRO_BENCH_MAX_KERNEL_OVERHEAD`` to tune the asserted
single-node overhead ceiling, and ``REPRO_BENCH_MIN_PARALLEL_SPEEDUP`` to
tune the asserted sharded speedup floor (default conservative: CI
containers may expose a single core, where the measured speedup comes from
batching alone rather than true parallelism).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.avrora.network import Channel, Network
from repro.avrora.node import Node
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import BASELINE

APP = "Surge_Mica2"

SIM_SECONDS = 10.0
SMOKE_SECONDS = 2.0

NODE_COUNTS = (1, 2, 4, 8)
SMOKE_NODE_COUNTS = (1, 2)

# Sharded-kernel matrix: grid topology, node counts × worker counts.  The
# grid keeps hop distances (and therefore window sizes) small, which is
# the adversarial case for the window protocol's synchronization cost.
# The window must be long enough to amortize the fixed fork + pipe setup
# cost, or short runs undersell the steady-state throughput.
MATRIX_SIM_SECONDS = 10.0
SMOKE_MATRIX_SIM_SECONDS = 1.0
MATRIX_GRID_WIDTH = 4
MATRIX_NODE_COUNTS = (8, 16, 32)
SMOKE_MATRIX_NODE_COUNTS = (8,)
MATRIX_WORKER_COUNTS = (1, 2, 4)
SMOKE_MATRIX_WORKER_COUNTS = (1, 2)

#: Asserted ceiling on lockstep wall time / sequential wall time for one
#: node.  Generous so a loaded CI machine does not flake; an idle machine
#: shows the kernel within a few percent of the sequential runner.
MAX_KERNEL_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_KERNEL_OVERHEAD", "1.6"))

#: Asserted floor on sharded aggregate throughput / in-process throughput
#: at the largest matrix cell.  The default only demands "not materially
#: slower": window batching alone buys up to ~1.5x even on a single
#: exposed core (where run-to-run variance is large), and true parallel
#: hardware exceeds 2x.  CI with known parallel hardware should export
#: REPRO_BENCH_MIN_PARALLEL_SPEEDUP=2.0.
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "0.9"))

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_network.json"


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _build_network(program, node_count: int) -> Network:
    network = Network(channel=Channel(topology="chain"))
    for node_id in range(node_count):
        node = Node(program, node_id=node_id)
        node.boot()
        network.add_node(node)
    return network


def _build_grid_network(program, node_count: int) -> Network:
    network = Network(channel=Channel(topology="grid",
                                      grid_width=MATRIX_GRID_WIDTH))
    for node_id in range(node_count):
        node = Node(program, node_id=node_id)
        node.boot()
        network.add_node(node)
    return network


def _observe(network: Network) -> dict:
    return {
        "times": [node.time_cycles for node in network.nodes],
        "busy": [node.busy_cycles for node in network.nodes],
        "statements": [node.interpreter.statements_executed
                       for node in network.nodes],
        "tx": [len(node.radio.packets_sent) for node in network.nodes],
        "rx": [node.radio.packets_received for node in network.nodes],
        "delivered": network.delivered_packets,
    }


def measure() -> dict:
    seconds = SMOKE_SECONDS if _smoke() else SIM_SECONDS
    node_counts = SMOKE_NODE_COUNTS if _smoke() else NODE_COUNTS
    program = BuildPipeline(BASELINE).build_named(APP).program

    results: dict = {
        "app": APP,
        "sim_seconds": seconds,
        "topology": "chain",
        "max_kernel_overhead_asserted": MAX_KERNEL_OVERHEAD,
        "scaling": [],
    }

    # -- shared code cache: the lowering front end runs once per program ----
    cache = program.analysis().code_cache()
    assert cache.lowerings == 0, "expected a cold code cache"
    first = Node(program)
    first.boot()
    start = time.perf_counter()
    functions = first.interpreter.warm()
    first_compile = time.perf_counter() - start
    functions_lowered = cache.lowerings
    assert functions_lowered == functions, \
        "every function should have been lowered exactly once"

    extra_compile = None
    for _ in range(3):  # best-of-3: closure binding is a sub-10ms measure
        extra = Node(program)
        extra.boot()
        start = time.perf_counter()
        extra.interpreter.warm()
        elapsed = time.perf_counter() - start
        if extra_compile is None or elapsed < extra_compile:
            extra_compile = elapsed
    assert cache.lowerings == functions_lowered, \
        "an extra node re-ran the lowering front end"
    results["code_cache"] = {
        "functions": functions,
        "first_node_compile_s": round(first_compile, 4),
        "extra_node_compile_s": round(extra_compile, 4),
        "compile_amortization": round(
            first_compile / max(extra_compile, 1e-9), 2),
    }

    # -- lockstep vs legacy-sequential on one node (identical semantics) ----
    # Untimed warm-up: the process's first execution-thread spin-up costs
    # ~tens of ms and would otherwise land inside the lockstep window.
    _build_network(program, 1).run(0.2)

    sequential = _build_network(program, 1)
    gc.collect()  # keep collection pauses out of the ~25ms windows
    start = time.perf_counter()
    sequential.run_sequential(seconds)
    sequential_wall = time.perf_counter() - start

    lockstep = _build_network(program, 1)
    gc.collect()
    start = time.perf_counter()
    lockstep.run(seconds)
    lockstep_wall = time.perf_counter() - start

    assert _observe(sequential) == _observe(lockstep), \
        "single-node lockstep diverged from the sequential semantics"
    overhead = round(lockstep_wall / max(sequential_wall, 1e-9), 3)
    assert overhead <= MAX_KERNEL_OVERHEAD, \
        f"lockstep kernel overhead {overhead}x exceeded the " \
        f"{MAX_KERNEL_OVERHEAD}x ceiling on a single node"
    results["single_node"] = {
        "sequential_wall_s": round(sequential_wall, 4),
        "lockstep_wall_s": round(lockstep_wall, 4),
        "kernel_overhead": overhead,
    }

    # -- node-count scaling under the lockstep kernel -----------------------
    for count in node_counts:
        network = _build_network(program, count)
        gc.collect()
        start = time.perf_counter()
        network.run(seconds)
        wall = time.perf_counter() - start
        statements = sum(node.interpreter.statements_executed
                         for node in network.nodes)
        superblocks = network.superblock_stats()
        results["scaling"].append({
            "nodes": count,
            "wall_s": round(wall, 4),
            "statements": statements,
            "statements_per_sec": round(statements / max(wall, 1e-9)),
            "delivered_packets": network.delivered_packets,
            "node_seconds_per_wall_second":
                round(count * seconds / max(wall, 1e-9), 1),
            "superblock_fused_fraction": superblocks["fused_fraction"],
        })
    # Every node of every network above shared the same plans: the front
    # end never ran again after the first warm-up node.
    assert cache.lowerings == functions_lowered, \
        "scaling runs re-ran the lowering front end"

    # -- sharded multi-process kernel: nodes × workers matrix ---------------
    matrix_seconds = (SMOKE_MATRIX_SIM_SECONDS if _smoke()
                      else MATRIX_SIM_SECONDS)
    matrix_nodes = (SMOKE_MATRIX_NODE_COUNTS if _smoke()
                    else MATRIX_NODE_COUNTS)
    matrix_workers = (SMOKE_MATRIX_WORKER_COUNTS if _smoke()
                      else MATRIX_WORKER_COUNTS)
    results["sharded_matrix"] = {
        "sim_seconds": matrix_seconds,
        "topology": "grid",
        "grid_width": MATRIX_GRID_WIDTH,
        "min_parallel_speedup_asserted": MIN_PARALLEL_SPEEDUP,
        "rows": [],
    }
    for count in matrix_nodes:
        base_throughput = None
        base_statements = None
        for workers in matrix_workers:
            network = _build_grid_network(program, count)
            gc.collect()
            start = time.perf_counter()
            network.run(matrix_seconds, workers=workers)
            wall = time.perf_counter() - start
            statements = sum(node.interpreter.statements_executed
                             for node in network.nodes)
            throughput = statements / max(wall, 1e-9)
            if workers == 1:
                base_throughput = throughput
                base_statements = statements
            else:
                # The free differential: sharding must not change what
                # any node executed, only how fast the field ran.
                assert statements == base_statements, \
                    f"{count} nodes / {workers} workers executed " \
                    f"{statements} statements vs {base_statements} " \
                    f"in-process — the sharded kernel diverged"
            sync_wait = sum(stats["sync_wait_s"]
                            for stats in network.shard_stats)
            rounds = max((stats["rounds"]
                          for stats in network.shard_stats), default=0)
            results["sharded_matrix"]["rows"].append({
                "nodes": count,
                "workers": workers,
                "wall_s": round(wall, 4),
                "statements": statements,
                "statements_per_sec": round(throughput),
                "statements_per_node_sec": round(throughput / count),
                "grant_rounds": rounds,
                "sync_wait_s": round(sync_wait, 4),
                "sync_fraction": round(
                    sync_wait / max(wall * workers, 1e-9), 3),
                "speedup": round(throughput / max(base_throughput, 1e-9), 2),
            })
    largest = results["sharded_matrix"]["rows"][-1]
    if not _smoke():
        # Smoke mode runs a deliberately tiny field where fork and pipe
        # setup dominate; the throughput floor is only meaningful at the
        # full matrix's largest cell.
        assert largest["speedup"] >= MIN_PARALLEL_SPEEDUP, \
            f"sharded kernel at {largest['nodes']} nodes / " \
            f"{largest['workers']} workers reached only " \
            f"{largest['speedup']}x over in-process (floor " \
            f"{MIN_PARALLEL_SPEEDUP}x)"
    # Workers inherit the warmed cache through fork: the coordinator's
    # process never lowered anything new for the matrix either.
    assert cache.lowerings == functions_lowered, \
        "sharded matrix runs re-ran the lowering front end"

    results["code_cache"]["plan_hits"] = cache.plan_hits
    return results


def _record(results: dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def format_table(results: dict) -> str:
    single = results["single_node"]
    cache = results["code_cache"]
    lines = [
        f"network scaling ({results['sim_seconds']}s simulated, "
        f"{results['topology']} topology):",
        f"  1-node kernel overhead: {single['kernel_overhead']}x "
        f"(sequential {single['sequential_wall_s']}s, "
        f"lockstep {single['lockstep_wall_s']}s)",
        f"  code cache: {cache['functions']} functions lowered once; "
        f"per-extra-node compile {cache['extra_node_compile_s']}s vs "
        f"{cache['first_node_compile_s']}s cold "
        f"({cache['compile_amortization']}x amortized)",
        f"{'nodes':>6} {'wall (s)':>9} {'stmts/s':>12} {'delivered':>10}",
    ]
    for row in results["scaling"]:
        lines.append(f"{row['nodes']:>6} {row['wall_s']:>9} "
                     f"{row['statements_per_sec']:>12,} "
                     f"{row['delivered_packets']:>10}")
    matrix = results["sharded_matrix"]
    lines.append(
        f"sharded kernel matrix ({matrix['sim_seconds']}s simulated, "
        f"grid width {matrix['grid_width']}):")
    lines.append(f"{'nodes':>6} {'workers':>8} {'wall (s)':>9} "
                 f"{'stmts/s':>12} {'speedup':>8} {'rounds':>8} "
                 f"{'sync':>6}")
    for row in matrix["rows"]:
        lines.append(f"{row['nodes']:>6} {row['workers']:>8} "
                     f"{row['wall_s']:>9} "
                     f"{row['statements_per_sec']:>12,} "
                     f"{row['speedup']:>7}x {row['grant_rounds']:>8} "
                     f"{row['sync_fraction']:>6}")
    return "\n".join(lines)


def test_network_scale() -> None:
    """The lockstep kernel stays near the sequential runner on one node.

    The overhead ceiling itself is asserted inside :func:`measure`, so the
    standalone CI invocation (``python benchmarks/bench_network_scale.py``)
    enforces it too.
    """
    results = measure()
    _record(results)
    print()
    print(format_table(results))
    for row in results["scaling"]:
        assert row["statements"] > 0


def main() -> None:
    results = measure()
    _record(results)
    print(format_table(results))
    print(f"results written to {RESULT_PATH}")


if __name__ == "__main__":
    main()
