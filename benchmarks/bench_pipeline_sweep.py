"""Batched build-sweep benchmark: front-end sharing vs. independent builds.

Runs the full Figure-3 sweep (every figure application × the unsafe
baseline + the seven figure variants) twice through the
:class:`~repro.toolchain.sweep.SweepRunner`:

* **unshared** — every (app, variant) build runs the complete pipeline
  independently (exactly what per-variant ``BuildPipeline.build`` does),
* **shared** — one nesC front end per application, every variant built
  from a fast ``Program.clone()`` of the shared program.

Both sweeps must produce identical build summaries — the speedup has to
come for free.  Results are recorded in ``BENCH_pipeline.json`` at the
repository root (CI uploads it as an artifact); run this module directly
for a standalone measurement.

Both sweep modes are timed best-of-``REPETITIONS`` (shared CI runners are
noisy; the minimum is the least-perturbed run).  Set ``REPRO_BENCH_SMOKE=1``
to sweep a three-app subset with one repetition (CI smoke mode) and
``REPRO_BENCH_MIN_SWEEP_SPEEDUP`` to tune the asserted floor (the default
is conservative so a loaded CI machine does not flake; an idle machine
shows ~1.6x on the full sweep).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.tinyos.suite import FIGURE_APPS
from repro.toolchain.sweep import SweepRunner
from repro.toolchain.variants import BASELINE, FIGURE3_VARIANTS

#: Asserted sweep speedup floor from front-end sharing.  The acceptance
#: target for an idle machine is 1.3x; the default stays below it so a
#: noisy CI machine does not flake, and the committed JSON carries the
#: full-run number.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SWEEP_SPEEDUP", "1.15"))

SMOKE_APPS = 3

#: Timed repetitions per sweep mode (best-of-N); 1 in smoke mode.
REPETITIONS = 3

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _apps() -> list[str]:
    return FIGURE_APPS[:SMOKE_APPS] if _smoke() else list(FIGURE_APPS)


def _timed_sweep(apps: list[str], share_front_end: bool):
    runner = SweepRunner(apps, [BASELINE] + FIGURE3_VARIANTS,
                         share_front_end=share_front_end)
    start = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - start


def measure() -> dict:
    """Run the sweep both ways (best-of-N, alternating) and return the table."""
    apps = _apps()
    variants = [BASELINE] + FIGURE3_VARIANTS
    repetitions = 1 if _smoke() else REPETITIONS

    # Warm up caches (imports, interned values, parser tables) so the first
    # measured sweep is not penalized.
    SweepRunner(apps[:1], variants[:2]).run()

    shared_times: list[float] = []
    unshared_times: list[float] = []
    shared = unshared = None
    for _ in range(repetitions):
        unshared, unshared_s = _timed_sweep(apps, share_front_end=False)
        unshared_times.append(unshared_s)
        shared, shared_s = _timed_sweep(apps, share_front_end=True)
        shared_times.append(shared_s)

    assert shared.summaries() == unshared.summaries(), \
        "front-end sharing changed build results"

    unshared_s = min(unshared_times)
    shared_s = min(shared_times)
    return {
        "applications": apps,
        "variants": [v.name for v in variants],
        "builds": len(shared),
        "repetitions": repetitions,
        "min_speedup_asserted": MIN_SPEEDUP,
        "unshared_seconds": round(unshared_s, 3),
        "shared_seconds": round(shared_s, 3),
        "unshared_seconds_all": [round(t, 3) for t in unshared_times],
        "shared_seconds_all": [round(t, 3) for t in shared_times],
        "speedup": round(unshared_s / shared_s, 3),
        "summaries_identical": True,
    }


def _record(results: dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def format_table(results: dict) -> str:
    return "\n".join([
        f"pipeline sweep ({len(results['applications'])} apps x "
        f"{len(results['variants'])} variants = {results['builds']} builds):",
        f"  independent builds : {results['unshared_seconds']:>8.3f}s",
        f"  shared front end   : {results['shared_seconds']:>8.3f}s",
        f"  speedup            : {results['speedup']:>8.3f}x "
        f"(summaries identical: {results['summaries_identical']})",
    ])


def test_pipeline_sweep() -> None:
    """Front-end sharing is summary-identical and substantially faster."""
    results = measure()
    _record(results)
    print()
    print(format_table(results))
    assert results["speedup"] >= MIN_SPEEDUP, \
        f"sweep speedup {results['speedup']}x fell below the " \
        f"{MIN_SPEEDUP}x floor"


def main() -> None:
    results = measure()
    _record(results)
    print(format_table(results))
    print(f"results written to {RESULT_PATH}")


if __name__ == "__main__":
    main()
