"""Section 2.1 ablation: cXprop's dead-code elimination vs the backend's.

The paper credits the stronger DCE pass with a 3-5% code-size improvement
over what the backend manages on its own (it "fails to eliminate some of the
trash left over after functions are inlined").  This harness builds the safe
suite with cXprop's DCE disabled and enabled (everything else identical) and
compares code and static-data size.
"""

from __future__ import annotations

import pytest

from repro.backend.gcc_opt import gcc_optimize
from repro.backend.image import build_image
from repro.ccured.config import CCuredConfig, MessageStrategy
from repro.ccured.instrument import cure
from repro.ccured.optimizer import optimize_checks
from repro.cxprop.driver import CxpropConfig, optimize_program
from repro.cxprop.inline import inline_program
from repro.nesc.hwrefactor import refactor_hardware_accesses
from repro.tinyos import suite
from repro.toolchain.report import percent_change


def _build_with_dce(app_name: str, enable_dce: bool):
    program = suite.build_program(app_name, suppress_norace=True)
    refactor_hardware_accesses(program)
    cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                               run_optimizer=False))
    optimize_checks(program)
    inline_program(program)
    optimize_program(program, CxpropConfig(enable_dce=enable_dce))
    gcc_optimize(program)
    return build_image(program)


def _ablation(apps):
    rows = []
    for app in apps:
        weak = _build_with_dce(app, enable_dce=False)
        strong = _build_with_dce(app, enable_dce=True)
        rows.append({
            "application": app,
            "code_weak": weak.code_bytes,
            "code_strong": strong.code_bytes,
            "code_delta_pct": percent_change(strong.code_bytes, weak.code_bytes),
            "ram_weak": weak.ram_bytes,
            "ram_strong": strong.ram_bytes,
        })
    return rows


def test_dce_ablation(benchmark, selected_apps):
    apps = selected_apps[:6] if len(selected_apps) > 6 else selected_apps
    rows = benchmark.pedantic(_ablation, args=(apps,), rounds=1, iterations=1)

    print()
    print("DCE ablation (safe, inlined, cXprop with/without its DCE pass)")
    print(f"{'application':<32s} {'code w/o DCE':>13s} {'code w/ DCE':>12s} "
          f"{'delta':>8s} {'RAM w/o':>8s} {'RAM w/':>7s}")
    for row in rows:
        print(f"{row['application']:<32s} {row['code_weak']:>13d} "
              f"{row['code_strong']:>12d} {row['code_delta_pct']:>+7.1f}% "
              f"{row['ram_weak']:>8d} {row['ram_strong']:>7d}")

    total_weak = sum(r["code_weak"] for r in rows)
    total_strong = sum(r["code_strong"] for r in rows)
    print(f"\nsuite code size change from the stronger DCE: "
          f"{percent_change(total_strong, total_weak):+.1f}% (paper: -3% to -5%)")

    assert total_strong < total_weak, \
        "cXprop's DCE should remove code the backend misses"
    for row in rows:
        assert row["ram_strong"] <= row["ram_weak"], \
            f"{row['application']}: DCE should never increase static data"
