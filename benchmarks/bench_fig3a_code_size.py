"""Figure 3(a): change in code size relative to the unsafe, unoptimized baseline.

Reproduces the seven bars of the figure for every application:

1. safe, verbose error messages,
2. safe, verbose error messages in ROM,
3. safe, terse error messages,
4. safe, error messages compressed as FLIDs,
5. safe, FLIDs, optimized by cXprop,
6. safe, FLIDs, inlined and then optimized by cXprop,
7. unsafe, inlined and then optimized by cXprop,

printing the percentage change in code (flash) bytes and the baseline's
absolute size (the numbers across the top of the figure).

Expected shape: plain CCured costs tens of percent of code size; moving the
verbose strings to ROM makes code bigger still; cXprop plus inlining brings
the safe program close to (or below) the unsafe baseline; and the same
optimizations shrink the unsafe program itself.
"""

from __future__ import annotations

import pytest

from repro.api.figures import figure3a_table


def test_figure3a_code_size(benchmark, workbench, selected_apps):
    table = benchmark.pedantic(
        figure3a_table, args=(workbench, selected_apps), rounds=1, iterations=1)

    print()
    print(table.format())

    by_name = {series.label: series.values for series in table.series}
    for app in table.applications:
        verbose = by_name["safe-verbose"][app]
        verbose_rom = by_name["safe-verbose-rom"][app]
        optimized = by_name["safe-optimized"][app]
        flid = by_name["safe-flid"][app]
        unsafe_opt = by_name["unsafe-optimized"][app]

        # CCured alone costs a significant amount of code.
        assert verbose > 5.0, f"{app}: CCured should increase code size"
        # Moving the verbose strings to flash makes the code/flash bar taller.
        assert verbose_rom >= verbose, \
            f"{app}: strings in ROM should not shrink the flash footprint"
        # The fully optimized safe build costs far less than unoptimized safe.
        assert optimized < flid, \
            f"{app}: inlining + cXprop should reduce safe code size"
        # cXprop also shrinks the unsafe program (the 'new baseline').
        assert unsafe_opt < 0.0, \
            f"{app}: cXprop should shrink the unsafe program"
        # The optimized safe build lands near the original baseline.
        assert optimized < 40.0, \
            f"{app}: optimized safe build strays too far from the baseline"
