"""Artifact-store benchmark: cold builds vs. microsecond warm hits.

Three sections, recorded in ``BENCH_store.json`` at the repository root:

``warm_hits``
    For each application: one cold build through a store-routed
    :class:`~repro.api.Workbench` (fresh session, empty store), then the
    best of many *fresh-session* warm lookups of the identical spec.  The
    warm session must execute zero passes and zero lowerings (counters
    prove it), return a byte-identical record, and beat the cold build by
    at least ``REPRO_BENCH_MIN_STORE_SPEEDUP``× (default 100).

``job_service``
    An in-thread :mod:`repro.api.server` over the warm store: requests
    per second for 1, 2 and 4 concurrent clients hammering warm specs,
    plus the in-flight dedup guarantee — two clients racing a *novel*
    spec cause exactly one build and receive byte-identical records.

``gc``
    The LRU eviction pass under a tight byte budget: the store shrinks
    below the budget, and the next lookup degrades to an honest rebuild.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload (CI smoke mode).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro.api.client import RemoteClient
from repro.api.server import JobService, build_httpd
from repro.api.specs import SCHEMA_VERSION, BuildSpec
from repro.api.workbench import Workbench
from repro.store import ArtifactStore

APPS = ("BlinkTask_Mica2", "Surge_Mica2", "Oscilloscope_Mica2")
SMOKE_APPS = ("BlinkTask_Mica2", "Surge_Mica2")
VARIANT = "safe-optimized"
NOVEL_VARIANT = "safe-flid"

WARM_REPS = 20
SMOKE_REPS = 8
CLIENT_REQUESTS = 40
SMOKE_REQUESTS = 12

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_MIN_STORE_SPEEDUP", "100"))


# ---------------------------------------------------------------------------
# Section 1: cold builds vs. warm store hits
# ---------------------------------------------------------------------------


def measure_warm_hits(store_dir: str) -> dict:
    apps = SMOKE_APPS if _smoke() else APPS
    reps = SMOKE_REPS if _smoke() else WARM_REPS
    per_app = {}
    for app in apps:
        spec = BuildSpec(app=app, variant=VARIANT)

        with Workbench(store=store_dir) as cold_bench:
            start = time.perf_counter()
            cold_record = cold_bench.build(spec)
            cold_s = time.perf_counter() - start
            assert cold_bench.stats()["builds_executed"] == 1

        warm_s = []
        for _ in range(reps):
            with Workbench(store=store_dir) as warm_bench:
                start = time.perf_counter()
                warm_record = warm_bench.build(spec)
                warm_s.append(time.perf_counter() - start)
                stats = warm_bench.stats()
            assert stats["passes_executed"] == 0, \
                f"warm hit for {app} executed {stats['passes_executed']} passes"
            assert stats["builds_executed"] == 0
            assert stats["lowerings"] == 0
            assert stats["store"]["record_hits"] == 1
            assert warm_record.to_dict() == cold_record.to_dict(), \
                f"store-served record for {app} differs from the built one"

        best_warm = min(warm_s)
        speedup = cold_s / max(best_warm, 1e-9)
        assert speedup >= _min_speedup(), \
            f"{app}: warm hit only {speedup:.1f}x faster than the cold " \
            f"build (floor {_min_speedup()}x)"
        per_app[app] = {
            "cold_build_s": round(cold_s, 6),
            "warm_hit_us": round(best_warm * 1e6, 1),
            "warm_hit_mean_us": round(sum(warm_s) / len(warm_s) * 1e6, 1),
            "speedup": round(speedup, 1),
            "warm_zero_passes": True,
            "record_byte_identical": True,
        }
    return {
        "variant": VARIANT,
        "warm_reps": reps,
        "min_speedup_floor": _min_speedup(),
        "apps": per_app,
    }


# ---------------------------------------------------------------------------
# Section 2: concurrent clients through the job service
# ---------------------------------------------------------------------------


def _hammer(client: RemoteClient, specs: list[BuildSpec],
            requests: int) -> None:
    for index in range(requests):
        client.run(specs[index % len(specs)])


def measure_job_service(store_dir: str) -> dict:
    apps = SMOKE_APPS if _smoke() else APPS
    requests = SMOKE_REQUESTS if _smoke() else CLIENT_REQUESTS
    warm_specs = [BuildSpec(app=app, variant=VARIANT) for app in apps]

    service = JobService(store_dir, workers=4)
    httpd = build_httpd(service, port=0)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        throughput = {}
        for clients in (1, 2, 4):
            workers = [threading.Thread(
                target=_hammer, args=(RemoteClient(url), warm_specs, requests))
                for _ in range(clients)]
            start = time.perf_counter()
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            wall = time.perf_counter() - start
            throughput[str(clients)] = round(
                clients * requests / max(wall, 1e-9), 1)

        # Warm specs live in the store: the service's workbench must not
        # have built anything yet.
        stats = service.stats()
        assert stats["workbench"]["builds_executed"] == 0, \
            "the job service rebuilt store-resident specs"

        # In-flight dedup: two clients race one *novel* spec.
        novel = BuildSpec(app=apps[0], variant=NOVEL_VARIANT)
        results: list = [None, None]

        def race(index: int) -> None:
            results[index] = RemoteClient(url).run(novel)

        racers = [threading.Thread(target=race, args=(index,))
                  for index in range(2)]
        for racer in racers:
            racer.start()
        for racer in racers:
            racer.join()
        assert json.dumps(results[0], sort_keys=True) == \
            json.dumps(results[1], sort_keys=True), \
            "racing clients received different records"
        stats = service.stats()
        assert stats["workbench"]["builds_executed"] == 1, \
            f"racing identical submissions built " \
            f"{stats['workbench']['builds_executed']} times"
        return {
            "warm_requests_per_client": requests,
            "requests_per_sec_by_clients": throughput,
            "inflight_dedup": {
                "racing_clients": 2,
                "builds_executed": stats["workbench"]["builds_executed"],
                "records_byte_identical": True,
            },
            "service_stats": {key: stats[key] for key in
                              ("submitted", "dedup_inflight", "dedup_done")},
        }
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.shutdown()


# ---------------------------------------------------------------------------
# Section 3: eviction under a byte budget
# ---------------------------------------------------------------------------


def measure_gc(store_dir: str) -> dict:
    store = ArtifactStore(store_dir, schema=SCHEMA_VERSION)
    before = store.size_bytes()
    budget = max(before // 4, 1)
    report = store.gc(budget)
    assert report["bytes_after"] <= budget
    assert report["evicted"] > 0
    # An evicted record degrades to an honest rebuild, not an error; a
    # survivor keeps serving from disk.  Check against the actual
    # post-eviction store state so the assertion is deterministic.
    app = (SMOKE_APPS if _smoke() else APPS)[0]
    spec = BuildSpec(app=app, variant=VARIANT)
    survived = store.has_record(spec.content_key())
    with Workbench(store=store_dir) as bench:
        bench.build(spec)
        rebuilt = bench.stats()["builds_executed"]
    assert rebuilt == (0 if survived else 1)
    return {
        "budget_bytes": budget,
        "bytes_before": report["bytes_before"],
        "bytes_after": report["bytes_after"],
        "evicted": report["evicted"],
        "probe_record_survived": survived,
        "rebuilds_after_eviction": rebuilt,
    }


def measure() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store:
        return {
            "smoke": _smoke(),
            "warm_hits": measure_warm_hits(store),
            "job_service": measure_job_service(store),
            "gc": measure_gc(store),
        }


def _record(results: dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def format_table(results: dict) -> str:
    warm = results["warm_hits"]
    lines = [
        f"artifact store ({warm['variant']}, best of "
        f"{warm['warm_reps']} fresh-session warm hits, floor "
        f"{warm['min_speedup_floor']}x):",
        f"{'application':<24} {'cold build':>12} {'warm hit':>12} "
        f"{'speedup':>9}",
    ]
    for app, row in warm["apps"].items():
        lines.append(f"{app:<24} {row['cold_build_s'] * 1e3:>10.1f}ms "
                     f"{row['warm_hit_us']:>10.1f}us "
                     f"{row['speedup']:>8.1f}x")
    service = results["job_service"]
    pairs = ", ".join(f"{clients} client(s): {rps} req/s"
                      for clients, rps in
                      service["requests_per_sec_by_clients"].items())
    lines.append(f"job service : {pairs}")
    dedup = service["inflight_dedup"]
    lines.append(f"dedup       : {dedup['racing_clients']} racing clients -> "
                 f"{dedup['builds_executed']} build, byte-identical records")
    gc = results["gc"]
    lines.append(f"gc          : {gc['bytes_before']} -> {gc['bytes_after']} "
                 f"bytes under a {gc['budget_bytes']}-byte budget "
                 f"({gc['evicted']} evicted, "
                 f"{gc['rebuilds_after_eviction']} honest rebuild(s) after)")
    return "\n".join(lines)


def test_artifact_store_benchmark() -> None:
    """Speedup floor, zero-pass warm hits, dedup and GC are asserted inside
    :func:`measure`, so the pytest invocation enforces them too."""
    results = measure()
    _record(results)
    print()
    print(format_table(results))
    for row in results["warm_hits"]["apps"].values():
        assert row["speedup"] >= results["warm_hits"]["min_speedup_floor"]


def main() -> None:
    results = measure()
    _record(results)
    print(format_table(results))
    print(f"results written to {RESULT_PATH}")


if __name__ == "__main__":
    main()
