"""Robustness benchmark: checkpoint overhead and recovery latency.

Measures the cost of the fault-tolerance layer in ``repro.avrora.shard``
along its two axes:

* **Checkpoint overhead** — the same sharded grid network run across a
  sweep of checkpoint cadences, from cadence 0 (checkpointing and
  recovery disabled — the PR-6 fast path) through the default.  Overhead
  is wall time relative to the cadence-0 run; the default cadence is
  asserted under a configurable ceiling (10% by default), because
  checkpointing is always on in production runs.

* **Recovery latency** — a chaos run that kills every worker once
  mid-simulation, timed against the fault-free run at the same cadence.
  The recorded figures are the coordinator's own accounting
  (``recovery_wall_s``, respawns, replayed rounds) plus the end-to-end
  wall-time delta the kills cost.

Every run in the sweep — including the chaos run — is asserted bit-equal
to the cadence-0 baseline on per-node statement counts and delivery
totals: measuring the overhead of a fault-tolerance layer is only
meaningful while it preserves the results.

Results are recorded in ``BENCH_robustness.json`` at the repository root
(CI uploads it as an artifact); run this module directly for a
standalone measurement, or via pytest as part of the benchmark suite.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the simulated window and the
cadence sweep (CI smoke mode), and
``REPRO_BENCH_MAX_CHECKPOINT_OVERHEAD`` to tune the asserted
default-cadence overhead ceiling (default ``1.10``).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.avrora.chaos import ChaosPolicy
from repro.avrora.network import Channel, Network
from repro.avrora.node import Node
from repro.avrora.shard import DEFAULT_CHECKPOINT_EVERY, run_sharded
from repro.toolchain.pipeline import BuildPipeline
from repro.toolchain.variants import BASELINE

APP = "Surge_Mica2"

SIM_SECONDS = 5.0
SMOKE_SECONDS = 1.0

NODE_COUNT = 8
GRID_WIDTH = 4
WORKERS = 2

#: Cadence sweep (window rounds between checkpoints).  0 disables the
#: layer entirely and is the overhead baseline; the default cadence must
#: appear so the asserted ceiling measures the shipped configuration.
CADENCES = (0, 5, 10, DEFAULT_CHECKPOINT_EVERY, 50)
SMOKE_CADENCES = (0, DEFAULT_CHECKPOINT_EVERY)

#: Asserted ceiling on default-cadence wall time / cadence-0 wall time.
#: Checkpoints are pickled off the simulation's critical path only in
#: the sense that workers overlap; the snapshot itself is synchronous,
#: so this bounds what every production run pays for recoverability.
MAX_CHECKPOINT_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_CHECKPOINT_OVERHEAD", "1.10"))

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _build_network(program) -> Network:
    network = Network(channel=Channel(topology="grid",
                                      grid_width=GRID_WIDTH,
                                      loss=0.1, seed=3))
    for node_id in range(NODE_COUNT):
        node = Node(program, node_id=node_id)
        node.boot()
        network.add_node(node)
    return network


def _fingerprint(network: Network) -> dict:
    return {
        "statements": [node.interpreter.statements_executed
                       for node in network.nodes],
        "delivered": network.delivered_packets,
        "lost": network.lost_packets,
    }


def _timed_run(program, seconds: float, *, cadence: int,
               chaos: ChaosPolicy | None = None) -> tuple[Network, float]:
    network = _build_network(program)
    gc.collect()
    start = time.perf_counter()
    run_sharded(network, seconds, WORKERS, chaos=chaos,
                checkpoint_every=cadence)
    return network, time.perf_counter() - start


def measure() -> dict:
    seconds = SMOKE_SECONDS if _smoke() else SIM_SECONDS
    cadences = SMOKE_CADENCES if _smoke() else CADENCES
    program = BuildPipeline(BASELINE).build_named(APP).program

    results: dict = {
        "app": APP,
        "sim_seconds": seconds,
        "nodes": NODE_COUNT,
        "workers": WORKERS,
        "default_cadence": DEFAULT_CHECKPOINT_EVERY,
        "max_checkpoint_overhead_asserted": MAX_CHECKPOINT_OVERHEAD,
        "cadence_sweep": [],
    }

    # Untimed warm-up: first fork + execution-thread spin-up costs land
    # here instead of inside the cadence-0 baseline window.
    run_sharded(_build_network(program), 0.2, WORKERS, checkpoint_every=0)

    baseline_fp = None
    baseline_wall = None
    default_overhead = None
    for cadence in cadences:
        network, wall = _timed_run(program, seconds, cadence=cadence)
        fingerprint = _fingerprint(network)
        if cadence == 0:
            baseline_fp = fingerprint
            baseline_wall = wall
        else:
            assert fingerprint == baseline_fp, \
                f"cadence {cadence} changed the simulation results"
        recovery = network.recovery_stats
        overhead = round(wall / max(baseline_wall, 1e-9), 3)
        if cadence == DEFAULT_CHECKPOINT_EVERY:
            default_overhead = overhead
        results["cadence_sweep"].append({
            "cadence": cadence,
            "wall_s": round(wall, 4),
            "overhead": overhead,
            "checkpoints": recovery.get("checkpoints", 0),
            "checkpoint_bytes": recovery.get("checkpoint_bytes", 0),
        })
    assert default_overhead is not None, \
        "the sweep must include the default cadence"
    assert default_overhead <= MAX_CHECKPOINT_OVERHEAD, \
        f"default-cadence checkpointing cost {default_overhead}x the " \
        f"cadence-0 run (ceiling {MAX_CHECKPOINT_OVERHEAD}x)"
    results["default_cadence_overhead"] = default_overhead

    # -- recovery latency: kill every worker once, mid-run ------------------
    # The fault-free default-cadence run calibrates how many window
    # rounds the shards grant, so the kills land mid-protocol.
    calibration, faultfree_wall = _timed_run(
        program, seconds, cadence=DEFAULT_CHECKPOINT_EVERY)
    rounds = min(stats["rounds"] for stats in calibration.shard_stats)
    chaos = ChaosPolicy(kills=tuple(
        (worker, rounds // 2 + worker) for worker in range(WORKERS)))
    network, chaos_wall = _timed_run(
        program, seconds, cadence=DEFAULT_CHECKPOINT_EVERY, chaos=chaos)
    assert _fingerprint(network) == baseline_fp, \
        "the chaos run diverged from the fault-free results"
    recovery = network.recovery_stats
    assert recovery["respawns"] >= WORKERS
    results["recovery"] = {
        "chaos": chaos.label(),
        "faultfree_wall_s": round(faultfree_wall, 4),
        "chaos_wall_s": round(chaos_wall, 4),
        "kill_cost_s": round(max(chaos_wall - faultfree_wall, 0.0), 4),
        "respawns": recovery["respawns"],
        "chaos_kills": recovery["chaos_kills"],
        "replayed_rounds": recovery["replayed_rounds"],
        "recovery_wall_s": round(recovery["recovery_wall_s"], 4),
        "recovery_wall_per_respawn_s": round(
            recovery["recovery_wall_s"] / max(recovery["respawns"], 1), 4),
    }
    return results


def _record(results: dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def format_table(results: dict) -> str:
    lines = [
        f"checkpoint cadence sweep ({results['sim_seconds']}s simulated, "
        f"{results['nodes']} nodes, {results['workers']} workers):",
        f"{'cadence':>8} {'wall (s)':>9} {'overhead':>9} "
        f"{'ckpts':>6} {'bytes':>12}",
    ]
    for row in results["cadence_sweep"]:
        lines.append(f"{row['cadence']:>8} {row['wall_s']:>9} "
                     f"{row['overhead']:>8}x {row['checkpoints']:>6} "
                     f"{row['checkpoint_bytes']:>12,}")
    recovery = results["recovery"]
    lines.append(
        f"recovery ({recovery['chaos']}): "
        f"{recovery['respawns']} respawn(s), "
        f"{recovery['replayed_rounds']} round(s) replayed, "
        f"{recovery['recovery_wall_s']}s recovering "
        f"({recovery['recovery_wall_per_respawn_s']}s/respawn); "
        f"chaos run {recovery['chaos_wall_s']}s vs fault-free "
        f"{recovery['faultfree_wall_s']}s")
    return "\n".join(lines)


def test_robustness() -> None:
    """Default-cadence checkpointing stays under the overhead ceiling.

    The ceiling itself is asserted inside :func:`measure`, so the
    standalone CI invocation (``python benchmarks/bench_robustness.py``)
    enforces it too.
    """
    results = measure()
    _record(results)
    print()
    print(format_table(results))
    for row in results["cadence_sweep"]:
        if row["cadence"] > 0:
            assert row["checkpoints"] > 0


def main() -> None:
    results = measure()
    _record(results)
    print(format_table(results))
    print(f"results written to {RESULT_PATH}")


if __name__ == "__main__":
    main()
