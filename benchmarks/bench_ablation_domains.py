"""Ablation over cXprop's pluggable abstract domains.

cXprop's design point (and its companion paper) is that the analysis engine
is parameterized by an abstract domain.  This harness builds the safe,
inlined configuration with the constant-propagation, interval, and
value-set domains and compares how many checks each can eliminate and what
the resulting images cost.  The interval domain is the paper's workhorse:
bounds checks need ranges, so the constant domain removes strictly fewer.
"""

from __future__ import annotations

import pytest

from repro.toolchain.config import BuildVariant
from repro.toolchain.pipeline import BuildPipeline
from repro.ccured.config import MessageStrategy

_DOMAINS = ["constant", "interval", "valueset"]


def _variant(domain: str) -> BuildVariant:
    return BuildVariant(
        name=f"safe-optimized-{domain}",
        description=f"Safe, FLIDs, inlined, cXprop with the {domain} domain",
        message_strategy=MessageStrategy.FLID,
        run_inliner=True,
        run_cxprop=True,
        cxprop_domain=domain,
    )


def _ablation(apps):
    rows = []
    for app in apps:
        row = {"application": app}
        for domain in _DOMAINS:
            result = BuildPipeline(_variant(domain)).build_named(app)
            row[f"{domain}_survivors"] = result.checks_surviving
            row[f"{domain}_code"] = result.image.code_bytes
            row["inserted"] = result.checks_inserted
        rows.append(row)
    return rows


def test_domain_ablation(benchmark, selected_apps):
    apps = selected_apps[:5] if len(selected_apps) > 5 else selected_apps
    rows = benchmark.pedantic(_ablation, args=(apps,), rounds=1, iterations=1)

    print()
    print("Abstract-domain ablation (surviving checks / code bytes)")
    header = f"{'application':<32s} {'inserted':>9s}"
    for domain in _DOMAINS:
        header += f" {domain + ' chk':>13s} {domain + ' code':>14s}"
    print(header)
    for row in rows:
        line = f"{row['application']:<32s} {row['inserted']:>9d}"
        for domain in _DOMAINS:
            line += (f" {row[f'{domain}_survivors']:>13d}"
                     f" {row[f'{domain}_code']:>14d}")
        print(line)

    total_constant = sum(r["constant_survivors"] for r in rows)
    total_interval = sum(r["interval_survivors"] for r in rows)
    total_valueset = sum(r["valueset_survivors"] for r in rows)
    print(f"\nsuite totals: constant={total_constant} interval={total_interval} "
          f"valueset={total_valueset} (of {sum(r['inserted'] for r in rows)})")

    # Ranges matter: the interval domain eliminates at least as many checks
    # as plain constant propagation, and strictly more somewhere.
    assert total_interval <= total_constant
    assert total_interval < total_constant or total_valueset < total_constant, \
        "range-based domains should beat constant propagation somewhere"
    # The value-set domain is at least as precise as intervals here.
    assert total_valueset <= total_constant
