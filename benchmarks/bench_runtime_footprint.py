"""Section 2.3: the footprint of the CCured runtime library on a mote.

The paper reports that a minimally ported desktop runtime costs 1.6 KB of
RAM (40% of the Mica2's total) and 33 KB of code (26% of its flash), and
that removing the OS/x86 dependencies, disabling the collector and letting
the improved DCE strip unused pieces reduces it to 2 bytes of RAM and 314
bytes of ROM for a minimal application.

This harness builds BlinkTask (the paper's minimal application) twice — once
against the naive full runtime port and once against the embedded-adapted,
DCE-trimmed runtime — and reports the ROM/RAM attributable to runtime
symbols in each image.
"""

from __future__ import annotations

import pytest

from repro.tinyos.hardware import MICA2
from repro.toolchain.variants import SAFE_FULL_RUNTIME, SAFE_OPTIMIZED

APP = "BlinkTask_Mica2"


def _runtime_footprints(workbench):
    naive = workbench.build_result(APP, SAFE_FULL_RUNTIME)
    trimmed = workbench.build_result(APP, SAFE_OPTIMIZED)
    return {
        "naive": naive.runtime_footprint(),
        "trimmed": trimmed.runtime_footprint(),
        "naive_image": naive.image,
        "trimmed_image": trimmed.image,
    }


def test_runtime_footprint(benchmark, workbench):
    data = benchmark.pedantic(_runtime_footprints, args=(workbench,),
                              rounds=1, iterations=1)
    naive_rom, naive_ram = data["naive"]
    trimmed_rom, trimmed_ram = data["trimmed"]

    print()
    print("CCured runtime footprint on the Mica2 (BlinkTask)")
    print("==================================================")
    print(f"{'configuration':<28s} {'ROM (B)':>10s} {'RAM (B)':>10s} "
          f"{'% of flash':>11s} {'% of SRAM':>10s}")
    for label, (rom, ram) in (("naive desktop port", (naive_rom, naive_ram)),
                              ("adapted + DCE-trimmed", (trimmed_rom, trimmed_ram))):
        print(f"{label:<28s} {rom:>10d} {ram:>10d} "
              f"{100.0 * rom / MICA2.flash_bytes:>10.1f}% "
              f"{100.0 * ram / MICA2.ram_bytes:>9.1f}%")
    print(f"\npaper: naive port 33 KB ROM / 1.6 KB RAM -> trimmed 314 B ROM / 2 B RAM")

    # Shape assertions: the naive port is prohibitively large relative to the
    # trimmed one, and the trimmed runtime is tiny in absolute terms.
    assert naive_ram >= 1024, "the naive runtime should cost over 1 KB of RAM"
    assert naive_rom >= 8 * trimmed_rom, \
        "trimming should reclaim the vast majority of the runtime's code"
    assert naive_ram >= 100 * max(trimmed_ram, 1), \
        "trimming should reclaim almost all of the runtime's RAM"
    assert trimmed_ram <= 8, "the trimmed runtime should keep only a few bytes of RAM"
    assert trimmed_rom <= 1200, "the trimmed runtime should be a few hundred bytes"
