"""Figure 3(b): change in static data (RAM) size relative to the baseline.

Same seven build variants as Figure 3(a), measuring static RAM: ``.data`` +
``.bss`` + RAM-resident string literals.  The paper clips this figure at
+100% because the verbose-message variants overflow it by an order of
magnitude; the harness prints both the raw and the clipped values.

Expected shape: verbose messages blow up RAM (their strings live in SRAM on
the Mica2); placing them in ROM or compressing them to FLIDs recovers almost
all of it; cXprop's dead-data elimination pushes the safe build close to the
baseline; and cXprop slightly shrinks the unsafe program's data as well.
"""

from __future__ import annotations

import pytest

from repro.api.figures import figure3b_table
from repro.toolchain.report import clip


def test_figure3b_data_size(benchmark, workbench, selected_apps):
    table = benchmark.pedantic(
        figure3b_table, args=(workbench, selected_apps), rounds=1, iterations=1)

    print()
    print(table.format())
    print("\nClipped at +100% (as plotted in the paper):")
    for app in table.applications:
        clipped = [f"{series.label}={clip(series.values[app], -100.0, 100.0):+.0f}%"
                   for series in table.series]
        print(f"  {app}: " + ", ".join(clipped))

    by_name = {series.label: series.values for series in table.series}
    for app in table.applications:
        verbose = by_name["safe-verbose"][app]
        verbose_rom = by_name["safe-verbose-rom"][app]
        flid = by_name["safe-flid"][app]
        optimized = by_name["safe-optimized"][app]

        if app.endswith("_Mica2"):
            # On the Harvard-architecture AVR the verbose message strings
            # live in SRAM, which is what makes this variant unacceptable.
            # (The von Neumann MSP430 keeps them in flash, so the TelosB
            # application is exempt from this particular blow-up.)
            assert verbose > 100.0, \
                f"{app}: verbose message strings should overwhelm RAM"
            # Moving them to flash or compressing them recovers nearly all.
            assert verbose_rom < verbose / 2, \
                f"{app}: ROM strings should eliminate most of the RAM overhead"
            assert flid < verbose / 2, \
                f"{app}: FLIDs should eliminate most of the RAM overhead"
        # cXprop reduces RAM further (dead data elimination), never increases.
        assert optimized <= flid + 1e-9, \
            f"{app}: cXprop should not increase static data"
        assert optimized < 60.0, \
            f"{app}: optimized safe RAM overhead should be modest"
