"""Section 2.1 ablation: inlining before the backend vs. leaving it to the backend.

The paper reports that running the toolchain's own inliner before the C
compiler produces roughly 5% smaller executables than relying on the
backend, and that inlining is what gives cXprop the context sensitivity it
needs to remove checks (Figure 2, bars 3 vs 4).

This harness measures both effects: safe code size and surviving checks with
cXprop alone versus inliner + cXprop.
"""

from __future__ import annotations

import pytest

from repro.toolchain.report import percent_change
from repro.toolchain.variants import SAFE_FLID_CXPROP, SAFE_OPTIMIZED


def _ablation(workbench, apps):
    rows = []
    for app in apps:
        without = workbench.build_result(app, SAFE_FLID_CXPROP)
        with_inline = workbench.build_result(app, SAFE_OPTIMIZED)
        rows.append({
            "application": app,
            "code_without": without.image.code_bytes,
            "code_with": with_inline.image.code_bytes,
            "code_delta_pct": percent_change(with_inline.image.code_bytes,
                                             without.image.code_bytes),
            "checks_without": without.checks_surviving,
            "checks_with": with_inline.checks_surviving,
            "checks_inserted": with_inline.checks_inserted,
        })
    return rows


def test_inliner_ablation(benchmark, workbench, selected_apps):
    rows = benchmark.pedantic(_ablation, args=(workbench, selected_apps),
                              rounds=1, iterations=1)

    print()
    print("Inliner ablation (safe builds, cXprop enabled in both columns)")
    print(f"{'application':<32s} {'code w/o':>9s} {'code w/':>9s} {'delta':>8s} "
          f"{'checks w/o':>11s} {'checks w/':>10s}")
    for row in rows:
        print(f"{row['application']:<32s} {row['code_without']:>9d} "
              f"{row['code_with']:>9d} {row['code_delta_pct']:>+7.1f}% "
              f"{row['checks_without']:>11d} {row['checks_with']:>10d}")

    total_without = sum(row["code_without"] for row in rows)
    total_with = sum(row["code_with"] for row in rows)
    print(f"\nsuite code size change from inlining: "
          f"{percent_change(total_with, total_without):+.1f}% "
          f"(paper: roughly -5%)")

    # Inlining lets cXprop remove strictly more checks overall.
    assert sum(r["checks_with"] for r in rows) < \
        sum(r["checks_without"] for r in rows), \
        "inlining should enable additional check elimination"
    # And it does not blow up code size across the suite.
    assert total_with <= total_without * 1.10, \
        "inlining before the backend should not grow the suite by more than 10%"
