"""Section 2.1/2.2 ablation: atomic-section optimization.

Safe builds add atomic sections around checks that touch racy variables
(Section 2.2); the improved concurrency analysis then eliminates the nested
ones and avoids saving the interrupt-enable bit where it can (Section 2.1).
This harness measures how many atomic sections the safe build contains, how
many the optimizer removes or cheapens, and what that is worth in code size.
"""

from __future__ import annotations

import pytest

from repro.backend.gcc_opt import gcc_optimize
from repro.backend.image import build_image
from repro.ccured.config import CCuredConfig, MessageStrategy
from repro.ccured.instrument import cure
from repro.ccured.optimizer import optimize_checks
from repro.cminor import ast_nodes as ast
from repro.cminor.visitor import walk_statements
from repro.cxprop.driver import CxpropConfig, optimize_program
from repro.cxprop.inline import inline_program
from repro.nesc.hwrefactor import refactor_hardware_accesses
from repro.tinyos import suite
from repro.toolchain.report import percent_change


def _count_atomics(program) -> tuple[int, int]:
    total = 0
    saving = 0
    for func in program.iter_functions():
        for stmt in walk_statements(func.body):
            if isinstance(stmt, ast.Atomic):
                total += 1
                if stmt.save_irq:
                    saving += 1
    return total, saving


def _build(app_name: str, enable_atomic_opt: bool):
    program = suite.build_program(app_name, suppress_norace=True)
    refactor_hardware_accesses(program)
    cure(program, CCuredConfig(message_strategy=MessageStrategy.FLID,
                               run_optimizer=False))
    optimize_checks(program)
    inline_program(program)
    report = optimize_program(program,
                              CxpropConfig(enable_atomic_opt=enable_atomic_opt))
    gcc_optimize(program)
    return program, build_image(program), report


def _ablation(apps):
    rows = []
    for app in apps:
        prog_off, image_off, _ = _build(app, enable_atomic_opt=False)
        prog_on, image_on, report_on = _build(app, enable_atomic_opt=True)
        total_off, saving_off = _count_atomics(prog_off)
        total_on, saving_on = _count_atomics(prog_on)
        rows.append({
            "application": app,
            "atomics_without": total_off,
            "atomics_with": total_on,
            "irq_saving_without": saving_off,
            "irq_saving_with": saving_on,
            "nested_removed": report_on.atomic.nested_removed,
            "code_without": image_off.code_bytes,
            "code_with": image_on.code_bytes,
        })
    return rows


def test_atomic_ablation(benchmark, selected_apps):
    apps = selected_apps[:6] if len(selected_apps) > 6 else selected_apps
    rows = benchmark.pedantic(_ablation, args=(apps,), rounds=1, iterations=1)

    print()
    print("Atomic-section optimization (safe, inlined, cXprop builds)")
    print(f"{'application':<32s} {'atomics w/o':>12s} {'atomics w/':>11s} "
          f"{'irq-save w/o':>13s} {'irq-save w/':>12s} {'code delta':>11s}")
    for row in rows:
        delta = percent_change(row["code_with"], row["code_without"])
        print(f"{row['application']:<32s} {row['atomics_without']:>12d} "
              f"{row['atomics_with']:>11d} {row['irq_saving_without']:>13d} "
              f"{row['irq_saving_with']:>12d} {delta:>+10.1f}%")

    total_removed = sum(r["atomics_without"] - r["atomics_with"] for r in rows)
    total_cheapened = sum(
        (r["atomics_with"] - r["irq_saving_with"]) for r in rows)
    print(f"\nnested atomic sections removed across the suite: {total_removed}")
    print(f"atomic sections that skip the IRQ-state save: {total_cheapened}")

    assert total_removed > 0, "the optimizer should remove nested atomic sections"
    assert total_cheapened > 0, \
        "the optimizer should avoid the IRQ-state save somewhere"
    assert sum(r["code_with"] for r in rows) <= sum(r["code_without"] for r in rows), \
        "atomic optimization should never grow the code"
