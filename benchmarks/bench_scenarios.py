"""Scenario-subsystem benchmark: fault-injection throughput and the
golden-run cache.

Runs one seeded fault plan (every fault kind) against the baseline and
fully safe builds of Surge through :class:`repro.scenarios.runner.\
ScenarioRunner`, measuring wall time per faulted simulation ("faults per
second"), the golden-run cache hit rate across a follow-up plan that
reuses the same variants, and the matrix's rerun determinism (the verdict
table must be bit-identical when the whole scenario repeats).

Two cells double as a correctness guard — the paper's headline split:
the pointer bit flip must be ``silent-corruption`` on the baseline build
and ``detected`` on the safe one.

Results are recorded in ``BENCH_scenarios.json`` at the repository root
(CI uploads it as an artifact); run this module directly for a standalone
measurement, or via pytest as part of the benchmark suite.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the simulated window (CI smoke
mode).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.api.specs import ScenarioSpec
from repro.api.workbench import Workbench
from repro.scenarios.faults import (
    DEFAULT_FAULT_NAMES,
    FaultPlan,
    PayloadCorruptFault,
    default_fault,
)
from repro.scenarios.runner import ScenarioRunner

APP = "Surge_Mica2"
VARIANTS = ("baseline", "safe-optimized")
NODE_COUNT = 2

SIM_SECONDS = 4.0
SMOKE_SECONDS = 2.0

BIT_FLIP_LABEL = "bit-flip@RadioCRCPacketC__radio_rx_ptr"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


def _smoke() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _spec(plan: FaultPlan, seconds: float) -> ScenarioSpec:
    return ScenarioSpec(app=APP, variants=VARIANTS, plan=plan,
                        node_count=NODE_COUNT, seconds=seconds)


def measure() -> dict:
    seconds = SMOKE_SECONDS if _smoke() else SIM_SECONDS
    with Workbench() as bench:
        return _measure(bench, seconds)


def _measure(bench: Workbench, seconds: float) -> dict:
    plan = FaultPlan(faults=tuple(default_fault(name, NODE_COUNT)
                                  for name in DEFAULT_FAULT_NAMES))
    spec = _spec(plan, seconds)

    # Builds are part of the workbench's job, not the scenario layer's —
    # pay for them outside the timed window.
    for build_spec in spec.build_specs():
        bench.build_result(build_spec)

    runner = ScenarioRunner(bench)
    start = time.perf_counter()
    outcome = runner.run(spec)
    wall = time.perf_counter() - start
    fault_runs = len(VARIANTS) * len(plan.faults)
    total_runs = fault_runs + outcome["golden"]["runs"]

    verdict_of = dict(zip(plan.labels(),
                          (row[VARIANTS.index("baseline")]
                           for row in outcome["verdicts"])))
    safe_of = dict(zip(plan.labels(),
                       (row[VARIANTS.index("safe-optimized")]
                        for row in outcome["verdicts"])))
    assert verdict_of[BIT_FLIP_LABEL] == "silent-corruption", \
        f"baseline should absorb the pointer flip silently, " \
        f"got {verdict_of[BIT_FLIP_LABEL]}"
    assert safe_of[BIT_FLIP_LABEL] == "detected", \
        f"the safe build should detect the pointer flip, " \
        f"got {safe_of[BIT_FLIP_LABEL]}"

    # A different plan against the same variants: every golden run must
    # come out of the cache.
    follow_up = _spec(FaultPlan(faults=(PayloadCorruptFault(flips=2),),
                                seed=1), seconds)
    follow_outcome = runner.run(follow_up)
    assert follow_outcome["golden"]["runs"] == 0, \
        "the follow-up plan re-ran a golden simulation"
    hit_rate = runner.golden_hits / max(runner.golden_hits
                                        + runner.golden_runs, 1)

    # Rerun determinism: the matrix is a pure function of the spec.
    replay = ScenarioRunner(bench).run(spec)
    assert replay["verdicts"] == outcome["verdicts"], \
        "scenario rerun produced a different verdict matrix"
    assert replay["details"] == outcome["details"], \
        "scenario rerun produced different details"

    plan_cache = _measure_plan_cache(plan, seconds, outcome)

    return {
        "app": APP,
        "variants": list(VARIANTS),
        "node_count": NODE_COUNT,
        "sim_seconds": seconds,
        "faults": plan.labels(),
        "verdicts": {"baseline": verdict_of, "safe-optimized": safe_of},
        "matrix_wall_s": round(wall, 4),
        "simulations": total_runs,
        "faulted_runs": fault_runs,
        "faults_per_sec": round(fault_runs / max(wall, 1e-9), 3),
        "sim_seconds_per_wall_second": round(
            total_runs * seconds / max(wall, 1e-9), 2),
        "golden_cache": {
            "runs": runner.golden_runs,
            "hits": runner.golden_hits,
            "hit_rate": round(hit_rate, 3),
        },
        "plan_cache": plan_cache,
        "rerun_bit_identical": True,
    }


def _measure_plan_cache(plan: FaultPlan, seconds: float,
                        reference: dict) -> dict:
    """The warm-plan-cache column: a repeated matrix lowers nothing.

    Two *fresh* workbench sessions share one persistent plan cache via
    ``ScenarioSpec.plan_cache``: the first (cold) session lowers every
    compiled function and persists the plans; the second (warm) session
    hydrates them and must report zero lowerings for every variant while
    producing the identical verdict matrix.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-plan-cache-") as cache:
        timings = {}
        outcomes = {}
        stats = {}
        for phase in ("cold", "warm"):
            with Workbench() as bench:
                spec = ScenarioSpec(
                    app=APP, variants=VARIANTS, plan=plan,
                    node_count=NODE_COUNT, seconds=seconds,
                    plan_cache=cache)
                # Builds stay outside the timed window, as above.
                for build_spec in spec.build_specs():
                    bench.build_result(build_spec)
                runner = ScenarioRunner(bench)
                start = time.perf_counter()
                outcomes[phase] = runner.run(spec)
                timings[phase] = time.perf_counter() - start
                stats[phase] = runner.plan_cache_stats
        for variant, telemetry in stats["warm"].items():
            assert telemetry.get("lowerings", 0) == 0, \
                f"warm plan cache still lowered {variant}: {telemetry}"
        assert outcomes["warm"]["verdicts"] == outcomes["cold"]["verdicts"] \
            == reference["verdicts"], \
            "plan-cached matrix diverged from the reference verdicts"
        return {
            "cold_wall_s": round(timings["cold"], 4),
            "warm_wall_s": round(timings["warm"], 4),
            "warm_lowerings": {variant: telemetry.get("lowerings", 0)
                               for variant, telemetry in
                               stats["warm"].items()},
            "cold_lowerings": {variant: telemetry.get("lowerings", 0)
                               for variant, telemetry in
                               stats["cold"].items()},
        }


def _record(results: dict) -> None:
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def format_table(results: dict) -> str:
    lines = [
        f"scenario matrix ({results['app']}, {results['node_count']} "
        f"node(s), {results['sim_seconds']}s simulated, "
        f"{len(results['faults'])} fault(s) × "
        f"{len(results['variants'])} variant(s)):",
        f"  {results['faulted_runs']} faulted runs in "
        f"{results['matrix_wall_s']}s wall — "
        f"{results['faults_per_sec']} faults/s "
        f"({results['sim_seconds_per_wall_second']}x realtime across "
        f"{results['simulations']} simulations)",
        f"  golden cache: {results['golden_cache']['hits']} hit(s) / "
        f"{results['golden_cache']['runs']} run(s) "
        f"(hit rate {results['golden_cache']['hit_rate']})",
        f"  plan cache  : cold {results['plan_cache']['cold_wall_s']}s -> "
        f"warm {results['plan_cache']['warm_wall_s']}s, warm lowerings "
        + str(results['plan_cache']['warm_lowerings']),
        f"{'fault':<40} {'baseline':<18} {'safe-optimized':<18}",
    ]
    for label in results["faults"]:
        lines.append(f"{label:<40} "
                     f"{results['verdicts']['baseline'][label]:<18} "
                     f"{results['verdicts']['safe-optimized'][label]:<18}")
    return "\n".join(lines)


def test_scenario_throughput() -> None:
    """The verdict split, golden-cache reuse and rerun determinism are
    asserted inside :func:`measure`, so the standalone CI invocation
    enforces them too."""
    results = measure()
    _record(results)
    print()
    print(format_table(results))
    assert results["faults_per_sec"] > 0


def main() -> None:
    results = measure()
    _record(results)
    print(format_table(results))
    print(f"results written to {RESULT_PATH}")


if __name__ == "__main__":
    main()
