"""Figure 3(c): change in processor duty cycle across build variants.

Each Mica2 application is simulated in its "reasonable sensor network
context" (Section 3.4) for a few virtual seconds per build variant, and the
duty cycle — busy cycles over total cycles — is compared against the unsafe,
unoptimized baseline.  Four variants are measured:

* safe, FLIDs (CCured alone),
* safe, FLIDs, optimized by cXprop,
* safe, FLIDs, inlined and then optimized by cXprop,
* unsafe, inlined and then optimized by cXprop.

Expected shape: CCured alone slows the application down; the fully optimized
safe build is about as fast as — often faster than — the unsafe original;
and cXprop speeds up the unsafe program itself.  The absolute duty cycles
are lower than the paper's because the simulator does not model the CC1000's
byte-level receive processing; the relative ordering is what is reproduced.
"""

from __future__ import annotations

import pytest

from repro.api.figures import figure3c_table
from repro.tinyos.suite import MICA2_APPS
from repro.toolchain.variants import SAFE_FLID, SAFE_OPTIMIZED, UNSAFE_OPTIMIZED


def test_figure3c_duty_cycle(benchmark, workbench, selected_apps):
    apps = [app for app in selected_apps if app in MICA2_APPS]
    table = benchmark.pedantic(
        figure3c_table, args=(workbench, apps), rounds=1, iterations=1)

    print()
    print(table.format())

    by_name = {series.label: series.values for series in table.series}
    slower_unoptimized = 0
    for app in table.applications:
        safe_unopt = by_name[SAFE_FLID.name][app]
        safe_opt = by_name[SAFE_OPTIMIZED.name][app]
        unsafe_opt = by_name[UNSAFE_OPTIMIZED.name][app]

        if safe_unopt > 0.0:
            slower_unoptimized += 1
        # The optimized safe build recovers most of the CPU cost of safety.
        assert safe_opt <= safe_unopt + 1e-9, \
            f"{app}: optimization should not slow the safe build down"
        # cXprop never slows the unsafe program down.
        assert unsafe_opt <= 5.0, \
            f"{app}: cXprop should not slow the unsafe program"
        # The optimized safe build stays within a modest factor of baseline.
        assert safe_opt <= 60.0, \
            f"{app}: optimized safe duty cycle strays too far from baseline"

    # CCured alone slows most applications down.
    assert slower_unoptimized >= len(table.applications) // 2, \
        "plain CCured should cost CPU time on most applications"
