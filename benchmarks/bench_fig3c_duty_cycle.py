"""Figure 3(c): change in processor duty cycle across build variants.

Each Mica2 application is simulated in its "reasonable sensor network
context" (Section 3.4) for a few virtual seconds per build variant, and the
duty cycle — busy cycles over total cycles — is compared against the unsafe,
unoptimized baseline.  Four variants are measured:

* safe, FLIDs (CCured alone),
* safe, FLIDs, optimized by cXprop,
* safe, FLIDs, inlined and then optimized by cXprop,
* unsafe, inlined and then optimized by cXprop.

Expected shape: CCured alone slows the application down; the fully optimized
safe build is about as fast as — often faster than — the unsafe original;
and cXprop speeds up the unsafe program itself.  The absolute duty cycles
are lower than the paper's because the simulator does not model the CC1000's
byte-level receive processing; the relative ordering is what is reproduced.
"""

from __future__ import annotations

import pytest

from repro.avrora.network import Network
from repro.avrora.node import Node
from repro.tinyos.suite import MICA2_APPS
from repro.toolchain.contexts import duty_cycle_context
from repro.toolchain.report import FigureTable, percent_change
from repro.toolchain.variants import (
    BASELINE,
    SAFE_FLID,
    SAFE_FLID_CXPROP,
    SAFE_OPTIMIZED,
    UNSAFE_OPTIMIZED,
)

#: Simulated seconds per measurement (the paper uses 180 s; these workloads
#: are periodic, so a shorter window converges to the same duty cycle).
SIM_SECONDS = 3.0

_VARIANTS = [SAFE_FLID, SAFE_FLID_CXPROP, SAFE_OPTIMIZED, UNSAFE_OPTIMIZED]


def _duty_cycle(build, app_name: str) -> float:
    network = Network(traffic=duty_cycle_context(app_name))
    node = Node(build.program, node_id=1)
    node.boot()
    network.add_node(node)
    network.run(SIM_SECONDS)
    return node.duty_cycle() * 100.0


def _figure3c_table(build_cache, apps: list[str]) -> FigureTable:
    table = FigureTable(
        title="Figure 3(c): change in duty cycle vs unsafe/unoptimized baseline",
        metric="duty cycle change (%)",
        applications=list(apps),
    )
    series = {variant.name: table.add_series(variant.name)
              for variant in _VARIANTS}
    for app in apps:
        baseline_build = build_cache.build(app, BASELINE)
        baseline_duty = _duty_cycle(baseline_build, app)
        table.baselines[app] = baseline_duty
        for variant in _VARIANTS:
            result = build_cache.build(app, variant)
            duty = _duty_cycle(result, app)
            series[variant.name].values[app] = percent_change(duty, baseline_duty)
    return table


def test_figure3c_duty_cycle(benchmark, build_cache, selected_apps):
    apps = [app for app in selected_apps if app in MICA2_APPS]
    table = benchmark.pedantic(
        _figure3c_table, args=(build_cache, apps), rounds=1, iterations=1)

    print()
    print(table.format())

    by_name = {series.label: series.values for series in table.series}
    slower_unoptimized = 0
    for app in table.applications:
        safe_unopt = by_name[SAFE_FLID.name][app]
        safe_opt = by_name[SAFE_OPTIMIZED.name][app]
        unsafe_opt = by_name[UNSAFE_OPTIMIZED.name][app]

        if safe_unopt > 0.0:
            slower_unoptimized += 1
        # The optimized safe build recovers most of the CPU cost of safety.
        assert safe_opt <= safe_unopt + 1e-9, \
            f"{app}: optimization should not slow the safe build down"
        # cXprop never slows the unsafe program down.
        assert unsafe_opt <= 5.0, \
            f"{app}: cXprop should not slow the unsafe program"
        # The optimized safe build stays within a modest factor of baseline.
        assert safe_opt <= 60.0, \
            f"{app}: optimized safe duty cycle strays too far from baseline"

    # CCured alone slows most applications down.
    assert slower_unoptimized >= len(table.applications) // 2, \
        "plain CCured should cost CPU time on most applications"
